open Autocfd_fortran

(* Same dynamic-error/stop exceptions as the tree-walking machine, so
   callers catch one exception set regardless of engine. *)
let error fmt = Format.kasprintf (fun m -> raise (Machine.Runtime_error m)) fmt

exception Jump of int

(* ------------------------------------------------------------------ *)
(* Compiled unit and runtime state                                     *)
(* ------------------------------------------------------------------ *)

type slot_kind = KInt | KReal | KBool | KDyn

type cu = {
  cu_unit : Ast.program_unit;
  sc_index : (string, int) Hashtbl.t;
  sc_names : string array;
  sc_kinds : slot_kind array;
  sc_types : Ast.dtype array;  (* assignment conversion target per slot *)
  sc_init : (int * Value.scalar) list;  (* PARAMETER + scalar DATA *)
  ar_index : (string, int) Hashtbl.t;
  ar_names : string array;  (* sorted *)
  ar_template : Value.arr array;  (* bounds + DATA contents, copied per state *)
  mutable cu_body : state -> unit;
}

and state = {
  cu : cu;
  sf : float array;  (* real slots *)
  si : int array;  (* integer slots *)
  sb : bool array;  (* logical slots *)
  sd : Value.scalar array;  (* dynamically-typed slots (rare) *)
  sset : bool array;
  arrs : Value.arr array;
  adata : float array array;  (* arrs.(i).data, one indirection less *)
  mutable flops : float;
  mutable input : float list;
  mutable out_rev : string list;
  hooks : hooks;
}

and hooks = {
  h_block : (int -> int * int) option;
  h_comm : state -> sid:int -> Ast.comm -> unit;
  h_pipe_recv :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_pipe_send :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_read : state -> int -> float array;
  h_write : state -> Value.scalar list -> unit;
}

let default_read st n =
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match st.input with
    | [] -> error "READ: input exhausted"
    | x :: rest ->
        out.(i) <- x;
        st.input <- rest
  done;
  out

let default_write st values =
  let line =
    String.concat " "
      (List.map (fun v -> Format.asprintf "%a" Value.pp_scalar v) values)
  in
  st.out_rev <- line :: st.out_rev

let sequential_hooks =
  {
    h_block = None;
    h_comm =
      (fun _ ~sid:_ _ ->
        error "communication statement on the sequential machine");
    h_pipe_recv =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline recv on the sequential machine");
    h_pipe_send =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline send on the sequential machine");
    h_read = default_read;
    h_write = default_write;
  }

(* Flop accounting: identical increments in identical program positions as
   Machine.charge, so flop totals (and hence simulated compute times) are
   bit-identical. *)
let ch st = st.flops <- st.flops +. 1.0

(* ------------------------------------------------------------------ *)
(* Typed closure IR                                                    *)
(* ------------------------------------------------------------------ *)

type cexp =
  | F of (state -> float)
  | I of (state -> int)
  | B of (state -> bool)
  | D of (state -> Value.scalar)  (* statically unknown: full dispatch *)

let as_float = function
  | F f -> f
  | I f -> fun st -> float_of_int (f st)
  | B f -> fun st -> if f st then 1.0 else 0.0
  | D f -> fun st -> Value.to_float (f st)

let as_int = function
  | I f -> f
  | F f -> fun st -> truncate (f st)  (* = Value.to_int of a Real *)
  | B f -> fun st -> if f st then 1 else 0
  | D f -> fun st -> Value.to_int (f st)

let as_bool = function
  | B f -> f
  | I f -> fun st -> f st <> 0
  | F f -> fun st -> f st <> 0.0
  | D f -> fun st -> Value.to_bool (f st)

let as_scalar = function
  | F f -> fun st -> Value.Real (f st)
  | I f -> fun st -> Value.Int (f st)
  | B f -> fun st -> Value.Bool (f st)
  | D f -> f

(* compile context: the cu minus the body *)
type ctx = {
  x_sc : (string, int) Hashtbl.t;
  x_kinds : slot_kind array;
  x_types : Ast.dtype array;
  x_ar : (string, int) Hashtbl.t;
  x_bounds : (int * int) array array;
}

let unset_var x : 'a = error "variable '%s' used before being set" x

(* ------------------------------------------------------------------ *)
(* Array references: precomputed strides, fused offsets                *)
(* ------------------------------------------------------------------ *)

let strides_of bounds =
  let n = Array.length bounds in
  let strides = Array.make n 1 in
  let size = ref 1 in
  for d = 0 to n - 1 do
    let lo, hi = bounds.(d) in
    strides.(d) <- !size;
    size := !size * (hi - lo + 1)
  done;
  strides

let base_of bounds strides =
  let b = ref 0 in
  Array.iteri (fun d (lo, _) -> b := !b + (lo * strides.(d))) bounds;
  !b

let idx_str idx =
  String.concat "," (Array.to_list (Array.map string_of_int idx))

(* mirror Machine's wrapped Value.linear_index failure on a read *)
let fail_ref name bounds idx : 'a =
  let n = Array.length bounds in
  if Array.length idx <> n then
    error "%s(%s): Value.linear_index: %d subscripts for rank %d" name
      (idx_str idx) (Array.length idx) n
  else begin
    let msg = ref "" in
    (try
       Array.iteri
         (fun d i ->
           let lo, hi = bounds.(d) in
           if i < lo || i > hi then begin
             msg :=
               Printf.sprintf
                 "Value.linear_index: subscript %d out of bounds %d:%d in \
                  dim %d"
                 i lo hi d;
             raise Exit
           end)
         idx
     with Exit -> ());
    error "%s(%s): %s" name (idx_str idx) !msg
  end

(* mirror Machine.assign's wrapped failure on a write (no index list) *)
let fail_set name bounds idx : 'a =
  let n = Array.length bounds in
  if Array.length idx <> n then
    error "%s: Value.linear_index: %d subscripts for rank %d" name
      (Array.length idx) n
  else begin
    let msg = ref "" in
    (try
       Array.iteri
         (fun d i ->
           let lo, hi = bounds.(d) in
           if i < lo || i > hi then begin
             msg :=
               Printf.sprintf
                 "Value.linear_index: subscript %d out of bounds %d:%d in \
                  dim %d"
                 i lo hi d;
             raise Exit
           end)
         idx
     with Exit -> ());
    error "%s: %s" name !msg
  end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec comp ctx (e : Ast.expr) : cexp =
  match e with
  | Ast.Const_int i -> I (fun _ -> i)
  | Ast.Const_real f -> F (fun _ -> f)
  | Ast.Const_bool b -> B (fun _ -> b)
  | Ast.Const_str s -> D (fun _ -> Value.Str s)
  | Ast.Var x -> comp_var ctx x
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.x_ar name then comp_ref ctx name args
      else comp_intrinsic ctx name args
  | Ast.Unop (Ast.Neg, a) -> (
      match comp ctx a with
      | I f -> I (fun st -> -f st)
      | F f ->
          F
            (fun st ->
              ch st;
              -.f st)
      | B f ->
          F
            (fun st ->
              ch st;
              if f st then -1.0 else -0.0)
      | D f ->
          D
            (fun st ->
              match f st with
              | Value.Int i -> Value.Int (-i)
              | v ->
                  ch st;
                  Value.Real (-.Value.to_float v)))
  | Ast.Unop (Ast.Lnot, a) ->
      let f = as_bool (comp ctx a) in
      B (fun st -> not (f st))
  | Ast.Binop (op, a, b) -> comp_binop ctx op a b
  | Ast.Local_lo (d, a) ->
      let f = as_int (comp ctx a) in
      I
        (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> max v (fst (g d)))
  | Ast.Local_hi (d, a) ->
      let f = as_int (comp ctx a) in
      I
        (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> min v (snd (g d)))

and comp_var ctx x =
  match Hashtbl.find_opt ctx.x_sc x with
  | None -> D (fun _ -> unset_var x)
  | Some i -> (
      match ctx.x_kinds.(i) with
      | KInt -> I (fun st -> if st.sset.(i) then st.si.(i) else unset_var x)
      | KReal -> F (fun st -> if st.sset.(i) then st.sf.(i) else unset_var x)
      | KBool -> B (fun st -> if st.sset.(i) then st.sb.(i) else unset_var x)
      | KDyn -> D (fun st -> if st.sset.(i) then st.sd.(i) else unset_var x))

and comp_ref ctx name args =
  let slot = Hashtbl.find ctx.x_ar name in
  let bounds = ctx.x_bounds.(slot) in
  let rank = Array.length bounds in
  let idxf = Array.of_list (List.map (fun a -> as_int (comp ctx a)) args) in
  if Array.length idxf <> rank then
    F
      (fun st ->
        let idx = Array.map (fun f -> f st) idxf in
        fail_ref name bounds idx)
  else begin
    let strides = strides_of bounds in
    let base = base_of bounds strides in
    match idxf with
    | [| f1 |] ->
        let lo1, hi1 = bounds.(0) in
        F
          (fun st ->
            let i1 = f1 st in
            if i1 < lo1 || i1 > hi1 then fail_ref name bounds [| i1 |]
            else st.adata.(slot).(i1 - lo1))
    | [| f1; f2 |] ->
        let lo1, hi1 = bounds.(0) and lo2, hi2 = bounds.(1) in
        let s2 = strides.(1) in
        F
          (fun st ->
            let i1 = f1 st in
            let i2 = f2 st in
            if i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 then
              fail_ref name bounds [| i1; i2 |]
            else st.adata.(slot).(i1 + (i2 * s2) - base))
    | [| f1; f2; f3 |] ->
        let lo1, hi1 = bounds.(0)
        and lo2, hi2 = bounds.(1)
        and lo3, hi3 = bounds.(2) in
        let s2 = strides.(1) and s3 = strides.(2) in
        F
          (fun st ->
            let i1 = f1 st in
            let i2 = f2 st in
            let i3 = f3 st in
            if
              i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 || i3 < lo3
              || i3 > hi3
            then fail_ref name bounds [| i1; i2; i3 |]
            else st.adata.(slot).(i1 + (i2 * s2) + (i3 * s3) - base))
    | _ ->
        F
          (fun st ->
            let idx = Array.map (fun f -> f st) idxf in
            let off = ref (-base) in
            Array.iteri
              (fun d i ->
                let lo, hi = bounds.(d) in
                if i < lo || i > hi then fail_ref name bounds idx;
                off := !off + (i * strides.(d)))
              idx;
            st.adata.(slot).(!off))
  end

(* the (state -> float -> unit) store side of an array element *)
and comp_ref_set ctx name args : state -> float -> unit =
  let slot = Hashtbl.find ctx.x_ar name in
  let bounds = ctx.x_bounds.(slot) in
  let rank = Array.length bounds in
  let idxf = Array.of_list (List.map (fun a -> as_int (comp ctx a)) args) in
  if Array.length idxf <> rank then fun st _ ->
    let idx = Array.map (fun f -> f st) idxf in
    fail_set name bounds idx
  else begin
    let strides = strides_of bounds in
    let base = base_of bounds strides in
    match idxf with
    | [| f1 |] ->
        let lo1, hi1 = bounds.(0) in
        fun st v ->
          let i1 = f1 st in
          if i1 < lo1 || i1 > hi1 then fail_set name bounds [| i1 |]
          else st.adata.(slot).(i1 - lo1) <- v
    | [| f1; f2 |] ->
        let lo1, hi1 = bounds.(0) and lo2, hi2 = bounds.(1) in
        let s2 = strides.(1) in
        fun st v ->
          let i1 = f1 st in
          let i2 = f2 st in
          if i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 then
            fail_set name bounds [| i1; i2 |]
          else st.adata.(slot).(i1 + (i2 * s2) - base) <- v
    | [| f1; f2; f3 |] ->
        let lo1, hi1 = bounds.(0)
        and lo2, hi2 = bounds.(1)
        and lo3, hi3 = bounds.(2) in
        let s2 = strides.(1) and s3 = strides.(2) in
        fun st v ->
          let i1 = f1 st in
          let i2 = f2 st in
          let i3 = f3 st in
          if
            i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 || i3 < lo3
            || i3 > hi3
          then fail_set name bounds [| i1; i2; i3 |]
          else st.adata.(slot).(i1 + (i2 * s2) + (i3 * s3) - base) <- v
    | _ ->
        fun st v ->
          let idx = Array.map (fun f -> f st) idxf in
          let off = ref (-base) in
          Array.iteri
            (fun d i ->
              let lo, hi = bounds.(d) in
              if i < lo || i > hi then fail_set name bounds idx;
              off := !off + (i * strides.(d)))
            idx;
          st.adata.(slot).(!off) <- v
  end

and comp_binop ctx op a b =
  let ca = comp ctx a and cb = comp ctx b in
  let open Ast in
  match op with
  | And ->
      let fa = as_bool ca and fb = as_bool cb in
      B (fun st -> fa st && fb st)
  | Or ->
      let fa = as_bool ca and fb = as_bool cb in
      B (fun st -> fa st || fb st)
  | Lt | Le | Gt | Ge | Eq | Ne -> (
      let fa = as_float ca and fb = as_float cb in
      let cmp g =
        B
          (fun st ->
            let x = fa st in
            let y = fb st in
            g x y)
      in
      match op with
      | Lt -> cmp (fun x y -> x < y)
      | Le -> cmp (fun x y -> x <= y)
      | Gt -> cmp (fun x y -> x > y)
      | Ge -> cmp (fun x y -> x >= y)
      | Eq -> cmp (fun x y -> x = y)
      | Ne -> cmp (fun x y -> x <> y)
      | _ -> assert false)
  | Add | Sub | Mul | Div | Pow -> (
      match (ca, cb) with
      | I fa, I fb -> (
          match op with
          | Add -> I (fun st -> fa st + fb st)
          | Sub -> I (fun st -> fa st - fb st)
          | Mul -> I (fun st -> fa st * fb st)
          | Div ->
              I
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  if y = 0 then error "integer division by zero" else x / y)
          | Pow -> (
              let ipow x y =
                let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
                pow 1 y
              in
              (* a non-negative constant exponent keeps the result integer *)
              match b with
              | Ast.Const_int y when y >= 0 ->
                  I (fun st -> ipow (fa st) y)
              | _ ->
                  D
                    (fun st ->
                      let x = fa st in
                      let y = fb st in
                      if y < 0 then
                        Value.Real
                          (Float.pow (float_of_int x) (float_of_int y))
                      else Value.Int (ipow x y)))
          | _ -> assert false)
      | (D _, _ | _, D _) ->
          (* a statically-unknown operand: replicate the machine's dynamic
             dispatch exactly (including its Int/Int no-charge rule) *)
          let fa = as_scalar ca and fb = as_scalar cb in
          D
            (fun st ->
              let va = fa st in
              let vb = fb st in
              match (va, vb) with
              | Value.Int x, Value.Int y -> (
                  match op with
                  | Add -> Value.Int (x + y)
                  | Sub -> Value.Int (x - y)
                  | Mul -> Value.Int (x * y)
                  | Div ->
                      if y = 0 then error "integer division by zero"
                      else Value.Int (x / y)
                  | Pow ->
                      if y < 0 then
                        Value.Real
                          (Float.pow (float_of_int x) (float_of_int y))
                      else
                        let rec pow acc n =
                          if n = 0 then acc else pow (acc * x) (n - 1)
                        in
                        Value.Int (pow 1 y)
                  | _ -> assert false)
              | va, vb -> (
                  ch st;
                  let x = Value.to_float va and y = Value.to_float vb in
                  match op with
                  | Add -> Value.Real (x +. y)
                  | Sub -> Value.Real (x -. y)
                  | Mul -> Value.Real (x *. y)
                  | Div -> Value.Real (x /. y)
                  | Pow -> Value.Real (Float.pow x y)
                  | _ -> assert false))
      | _ -> (
          (* at least one statically-real (or logical) operand: the float
             fast path, one flop charged like the machine's mixed case *)
          let fa = as_float ca and fb = as_float cb in
          let arith g =
            F
              (fun st ->
                let x = fa st in
                let y = fb st in
                ch st;
                g x y)
          in
          match op with
          | Add -> arith (fun x y -> x +. y)
          | Sub -> arith (fun x y -> x -. y)
          | Mul -> arith (fun x y -> x *. y)
          | Div -> arith (fun x y -> x /. y)
          | Pow -> arith Float.pow
          | _ -> assert false))

and comp_intrinsic ctx name args =
  let bad fmt = Printf.ksprintf (fun m -> F (fun _ -> error "%s" m)) fmt in
  let f1 g =
    match args with
    | [ a ] ->
        let f = as_float (comp ctx a) in
        F
          (fun st ->
            ch st;
            g (f st))
    | _ -> bad "intrinsic %s expects 1 argument" name
  in
  let fold2 g =
    match args with
    | a :: rest when rest <> [] ->
        let fa = as_float (comp ctx a) in
        let frest = List.map (fun e -> as_float (comp ctx e)) rest in
        F
          (fun st ->
            List.fold_left
              (fun acc f ->
                ch st;
                g acc (f st))
              (fa st) frest)
    | _ -> bad "intrinsic %s expects at least 2 arguments" name
  in
  match name with
  | "abs" -> (
      match args with
      | [ a ] -> (
          match comp ctx a with
          | I f -> I (fun st -> abs (f st))
          | F f ->
              F
                (fun st ->
                  ch st;
                  Float.abs (f st))
          | B f ->
              F
                (fun st ->
                  ch st;
                  if f st then 1.0 else 0.0)
          | D f ->
              D
                (fun st ->
                  match f st with
                  | Value.Int i -> Value.Int (abs i)
                  | v ->
                      ch st;
                      Value.Real (Float.abs (Value.to_float v))))
      | _ -> bad "abs expects 1 argument")
  | "sqrt" -> f1 Float.sqrt
  | "exp" -> f1 Float.exp
  | "log" -> f1 Float.log
  | "sin" -> f1 Float.sin
  | "cos" -> f1 Float.cos
  | "tan" -> f1 Float.tan
  | "atan" -> f1 Float.atan
  | "max" | "amax1" -> fold2 Float.max
  | "min" | "amin1" -> fold2 Float.min
  | "max0" -> (
      match args with
      | [ a; b ] ->
          let fa = as_int (comp ctx a) and fb = as_int (comp ctx b) in
          I (fun st -> max (fa st) (fb st))
      | _ -> bad "max0 expects 2 arguments")
  | "min0" -> (
      match args with
      | [ a; b ] ->
          let fa = as_int (comp ctx a) and fb = as_int (comp ctx b) in
          I (fun st -> min (fa st) (fb st))
      | _ -> bad "min0 expects 2 arguments")
  | "mod" -> (
      match args with
      | [ a; b ] -> (
          match (comp ctx a, comp ctx b) with
          | I fa, I fb ->
              I
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  if y = 0 then error "mod by zero" else x mod y)
          | (D _, _ | _, D _) as pair ->
              let fa = as_scalar (fst pair) and fb = as_scalar (snd pair) in
              D
                (fun st ->
                  match (fa st, fb st) with
                  | Value.Int x, Value.Int y ->
                      if y = 0 then error "mod by zero" else Value.Int (x mod y)
                  | va, vb ->
                      ch st;
                      Value.Real
                        (Float.rem (Value.to_float va) (Value.to_float vb)))
          | ca, cb ->
              let fa = as_float ca and fb = as_float cb in
              F
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  ch st;
                  Float.rem x y))
      | _ -> bad "mod expects 2 arguments")
  | "float" | "real" | "dble" -> (
      match args with
      | [ a ] -> F (as_float (comp ctx a))
      | _ -> bad "%s expects 1 argument" name)
  | "int" -> (
      match args with
      | [ a ] -> I (as_int (comp ctx a))
      | _ -> bad "int expects 1 argument")
  | "sign" -> (
      match args with
      | [ a; b ] ->
          let fa = as_float (comp ctx a) and fb = as_float (comp ctx b) in
          F
            (fun st ->
              ch st;
              let x = fa st in
              let y = fb st in
              if y >= 0.0 then Float.abs x else -.Float.abs x)
      | _ -> bad "sign expects 2 arguments")
  | _ ->
      bad "'%s' is neither a declared array nor a supported intrinsic" name

(* ------------------------------------------------------------------ *)
(* Scalar stores                                                       *)
(* ------------------------------------------------------------------ *)

(* store an already-int value (DO variables) into a slot, converting per
   the slot's assignment type like Machine.set_scalar on Value.Int *)
let int_store ctx i : state -> int -> unit =
  match ctx.x_kinds.(i) with
  | KInt ->
      fun st v ->
        st.si.(i) <- v;
        st.sset.(i) <- true
  | KReal ->
      fun st v ->
        st.sf.(i) <- float_of_int v;
        st.sset.(i) <- true
  | KBool ->
      fun st v ->
        st.sb.(i) <- v <> 0;
        st.sset.(i) <- true
  | KDyn -> (
      match ctx.x_types.(i) with
      | Ast.Integer ->
          fun st v ->
            st.sd.(i) <- Value.Int v;
            st.sset.(i) <- true
      | Ast.Real | Ast.Double ->
          fun st v ->
            st.sd.(i) <- Value.Real (float_of_int v);
            st.sset.(i) <- true
      | Ast.Logical ->
          fun st v ->
            st.sd.(i) <- Value.Bool (v <> 0);
            st.sset.(i) <- true)

(* store a float (READ values arrive as Value.Real) *)
let float_store ctx i : state -> float -> unit =
  match ctx.x_kinds.(i) with
  | KInt ->
      fun st v ->
        st.si.(i) <- truncate v;
        st.sset.(i) <- true
  | KReal ->
      fun st v ->
        st.sf.(i) <- v;
        st.sset.(i) <- true
  | KBool ->
      fun st v ->
        st.sb.(i) <- v <> 0.0;
        st.sset.(i) <- true
  | KDyn -> (
      match ctx.x_types.(i) with
      | Ast.Integer ->
          fun st v ->
            st.sd.(i) <- Value.Int (truncate v);
            st.sset.(i) <- true
      | Ast.Real | Ast.Double ->
          fun st v ->
            st.sd.(i) <- Value.Real v;
            st.sset.(i) <- true
      | Ast.Logical ->
          fun st v ->
            st.sd.(i) <- Value.Bool (v <> 0.0);
            st.sset.(i) <- true)

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let comp_assign_var ctx x rhs =
  match Hashtbl.find_opt ctx.x_sc x with
  | None ->
      (* every Var target is collected during slot assignment, so this is
         unreachable; fail like the machine would on execution *)
      fun _ -> error "variable '%s' has no slot (compiler bug)" x
  | Some i -> (
      match ctx.x_kinds.(i) with
      | KInt ->
          let f = as_int rhs in
          fun st ->
            st.si.(i) <- f st;
            st.sset.(i) <- true
      | KReal ->
          let f = as_float rhs in
          fun st ->
            st.sf.(i) <- f st;
            st.sset.(i) <- true
      | KBool ->
          let f = as_bool rhs in
          fun st ->
            st.sb.(i) <- f st;
            st.sset.(i) <- true
      | KDyn -> (
          match ctx.x_types.(i) with
          | Ast.Integer ->
              let f = as_int rhs in
              fun st ->
                st.sd.(i) <- Value.Int (f st);
                st.sset.(i) <- true
          | Ast.Real | Ast.Double ->
              let f = as_float rhs in
              fun st ->
                st.sd.(i) <- Value.Real (f st);
                st.sset.(i) <- true
          | Ast.Logical ->
              let f = as_bool rhs in
              fun st ->
                st.sd.(i) <- Value.Bool (f st);
                st.sset.(i) <- true))

let rec comp_block ctx (block : Ast.block) : state -> unit =
  let stmts = Array.of_list block in
  let fns = Array.map (comp_stmt ctx) stmts in
  let n = Array.length fns in
  let labels =
    List.concat
      (List.mapi
         (fun i st ->
           match st.Ast.s_label with Some l -> [ (l, i) ] | None -> [])
         block)
  in
  if labels = [] then fun st ->
    for i = 0 to n - 1 do
      fns.(i) st
    done
  else
    fun st ->
      let rec go i =
        if i < n then
          match fns.(i) st with
          | () -> go (i + 1)
          | exception Jump l -> (
              match List.assoc_opt l labels with
              | Some j -> go j
              | None -> raise (Jump l))
      in
      go 0

and comp_stmt ctx (st : Ast.stmt) : state -> unit =
  match st.Ast.s_kind with
  | Ast.Assign (Ast.Var x, rhs) -> comp_assign_var ctx x (comp ctx rhs)
  | Ast.Assign (Ast.Ref (name, args), rhs) ->
      if Hashtbl.mem ctx.x_ar name then begin
        let fr = as_float (comp ctx rhs) in
        let set = comp_ref_set ctx name args in
        fun s ->
          let v = fr s in
          set s v
      end
      else begin
        (* the machine evaluates rhs then the indices, then fails the
           array lookup *)
        let fr = as_scalar (comp ctx rhs) in
        let idxf = List.map (fun a -> as_int (comp ctx a)) args in
        fun s ->
          ignore (fr s);
          List.iter (fun f -> ignore (f s)) idxf;
          error "array '%s' is not declared" name
      end
  | Ast.Assign (_, rhs) ->
      let fr = as_scalar (comp ctx rhs) in
      fun s ->
        ignore (fr s);
        error "invalid assignment target"
  | Ast.Continue -> fun _ -> ()
  | Ast.Goto l -> fun _ -> raise (Jump l)
  | Ast.If (branches, els) -> (
      let brs =
        List.map
          (fun (c, b) -> (as_bool (comp ctx c), comp_block ctx b))
          branches
      in
      let els = Option.map (comp_block ctx) els in
      fun s ->
        let rec pick = function
          | [] -> ( match els with Some f -> f s | None -> ())
          | (c, f) :: rest -> if c s then f s else pick rest
        in
        pick brs)
  | Ast.Do d -> comp_do ctx d
  | Ast.Call (name, _) ->
      fun _ ->
        error "CALL %s: subroutine calls must be inlined before execution"
          name
  | Ast.Return | Ast.Stop -> fun _ -> raise Machine.Stop_run
  | Ast.Read items ->
      let setters = List.map (comp_read_target ctx) items in
      let n = List.length items in
      fun s ->
        let values = s.hooks.h_read s n in
        List.iteri (fun i set -> set s values.(i)) setters
  | Ast.Write items ->
      let fs = List.map (fun e -> as_scalar (comp ctx e)) items in
      fun s -> s.hooks.h_write s (List.map (fun f -> f s) fs)
  | Ast.Comm c ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_comm s ~sid c
  | Ast.Pipeline_recv { dim; dir; arrays } ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_pipe_recv s ~sid ~dim ~dir arrays
  | Ast.Pipeline_send { dim; dir; arrays } ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_pipe_send s ~sid ~dim ~dir arrays

and comp_read_target ctx (item : Ast.expr) : state -> float -> unit =
  match item with
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx.x_sc x with
      | Some i -> float_store ctx i
      | None -> fun _ _ -> error "variable '%s' has no slot (compiler bug)" x)
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.x_ar name then comp_ref_set ctx name args
      else begin
        let idxf = List.map (fun a -> as_int (comp ctx a)) args in
        fun s _ ->
          List.iter (fun f -> ignore (f s)) idxf;
          error "array '%s' is not declared" name
      end
  | _ -> fun _ _ -> error "invalid assignment target"

and comp_do ctx (d : Ast.do_loop) : state -> unit =
  let flo = as_int (comp ctx d.Ast.do_lo) in
  let fhi = as_int (comp ctx d.Ast.do_hi) in
  let fstep =
    match d.Ast.do_step with
    | Some e -> as_int (comp ctx e)
    | None -> fun _ -> 1
  in
  let body = comp_block ctx d.Ast.do_body in
  let set_var =
    match Hashtbl.find_opt ctx.x_sc d.Ast.do_var with
    | Some i -> int_store ctx i
    | None ->
        fun _ _ ->
          error "variable '%s' has no slot (compiler bug)" d.Ast.do_var
  in
  fun st ->
    let lo = flo st in
    let hi = fhi st in
    let step = fstep st in
    if step = 0 then error "DO loop with zero step";
    let i = ref lo in
    if step > 0 then
      while !i <= hi do
        set_var st !i;
        body st;
        i := !i + step
      done
    else
      while !i >= hi do
        set_var st !i;
        body st;
        i := !i + step
      done;
    set_var st !i

(* ------------------------------------------------------------------ *)
(* Slot assignment and unit compilation                                *)
(* ------------------------------------------------------------------ *)

let collect_scalar_names (u : Ast.program_unit) ~is_array =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let add n =
    if (not (is_array n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  in
  List.iter (fun d -> if d.Ast.d_dims = [] then add d.Ast.d_name) u.Ast.u_decls;
  List.iter (fun (n, _) -> add n) u.Ast.u_consts;
  List.iter (fun (n, _) -> add n) u.Ast.u_data;
  let add_expr e =
    Ast.fold_exprs (fun () e -> match e with Ast.Var x -> add x | _ -> ()) () e
  in
  Ast.iter_stmts
    (fun st ->
      List.iter add_expr (Ast.stmt_exprs st);
      match st.Ast.s_kind with
      | Ast.Do d -> add d.Ast.do_var
      | Ast.Comm (Ast.Allreduce_max v)
      | Ast.Comm (Ast.Allreduce_min v)
      | Ast.Comm (Ast.Allreduce_sum v) ->
          add v
      | Ast.Comm (Ast.Broadcast vars) -> List.iter add vars
      | _ -> ())
    u.Ast.u_body;
  List.rev !order

let kind_of_type = function
  | Ast.Integer -> KInt
  | Ast.Real | Ast.Double -> KReal
  | Ast.Logical -> KBool

let kind_matches kind (v : Value.scalar) =
  match (kind, v) with
  | KInt, Value.Int _ | KReal, Value.Real _ | KBool, Value.Bool _ -> true
  | _ -> false

let compile (u : Ast.program_unit) : cu =
  (* snapshot the machine's initial environment: PARAMETER constants,
     declared array bounds and DATA contents, with identical semantics
     (and identical failure modes) by construction *)
  let tm = Machine.create u in
  let ar_names = Array.of_list (Machine.array_names tm) in
  let ar_index = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace ar_index n i) ar_names;
  let ar_template = Array.map (Machine.array tm) ar_names in
  let sc_names =
    Array.of_list
      (collect_scalar_names u ~is_array:(Hashtbl.mem ar_index))
  in
  let sc_index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace sc_index n i) sc_names;
  let sc_types = Array.map (Machine.declared_type tm) sc_names in
  let init_bindings = Machine.scalar_bindings tm in
  let sc_kinds = Array.map kind_of_type sc_types in
  let sc_init = ref [] in
  Array.iteri
    (fun i n ->
      match List.assoc_opt n init_bindings with
      | None -> ()
      | Some v ->
          (* a PARAMETER whose value class disagrees with the slot's
             static type (e.g. an implicit-integer name bound to a real
             expression) falls back to a dynamically-typed slot *)
          if not (kind_matches sc_kinds.(i) v) then sc_kinds.(i) <- KDyn;
          sc_init := (i, v) :: !sc_init)
    sc_names;
  let cu =
    {
      cu_unit = u;
      sc_index;
      sc_names;
      sc_kinds;
      sc_types;
      sc_init = List.rev !sc_init;
      ar_index;
      ar_names;
      ar_template;
      cu_body = (fun _ -> assert false);
    }
  in
  let ctx =
    {
      x_sc = sc_index;
      x_kinds = sc_kinds;
      x_types = sc_types;
      x_ar = ar_index;
      x_bounds = Array.map (fun a -> a.Value.bounds) ar_template;
    }
  in
  cu.cu_body <- comp_block ctx u.Ast.u_body;
  cu

(* compiled units are pure functions of the AST: memoize per physical
   unit so every rank of a run — and every run over the same program —
   shares one compilation *)
let memo : (Ast.program_unit * cu) list ref = ref []
let memo_limit = 16

let of_unit u =
  match List.assq_opt u !memo with
  | Some cu -> cu
  | None ->
      let cu = compile u in
      let keep = List.filteri (fun i _ -> i < memo_limit - 1) !memo in
      memo := (u, cu) :: keep;
      cu

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

let create ?(hooks = sequential_hooks) ?(input = []) cu =
  let n = Array.length cu.sc_names in
  let arrs = Array.map Value.copy cu.ar_template in
  let st =
    {
      cu;
      sf = Array.make n 0.0;
      si = Array.make n 0;
      sb = Array.make n false;
      sd = Array.make n (Value.Int 0);
      sset = Array.make n false;
      arrs;
      adata = Array.map (fun a -> a.Value.data) arrs;
      flops = 0.0;
      input;
      out_rev = [];
      hooks;
    }
  in
  List.iter
    (fun (i, v) ->
      (match cu.sc_kinds.(i) with
      | KInt -> st.si.(i) <- Value.to_int v
      | KReal -> st.sf.(i) <- Value.to_float v
      | KBool -> st.sb.(i) <- Value.to_bool v
      | KDyn -> st.sd.(i) <- v);
      st.sset.(i) <- true)
    cu.sc_init;
  st

let run st =
  try st.cu.cu_body st with
  | Machine.Stop_run -> ()
  | Jump l -> error "jump to unknown label %d" l

let unit_of st = st.cu.cu_unit
let flops st = st.flops
let reset_flops st = st.flops <- 0.0
let output st = List.rev st.out_rev

let scalar_opt st name =
  match Hashtbl.find_opt st.cu.sc_index name with
  | None -> None
  | Some i ->
      if not st.sset.(i) then None
      else
        Some
          (match st.cu.sc_kinds.(i) with
          | KInt -> Value.Int st.si.(i)
          | KReal -> Value.Real st.sf.(i)
          | KBool -> Value.Bool st.sb.(i)
          | KDyn -> st.sd.(i))

let scalar st name =
  match scalar_opt st name with
  | Some v -> v
  | None -> error "variable '%s' used before being set" name

let set_scalar st name (v : Value.scalar) =
  match Hashtbl.find_opt st.cu.sc_index name with
  | None -> error "variable '%s' has no slot in the compiled unit" name
  | Some i -> (
      st.sset.(i) <- true;
      match st.cu.sc_kinds.(i) with
      | KInt -> st.si.(i) <- Value.to_int v
      | KReal -> st.sf.(i) <- Value.to_float v
      | KBool -> st.sb.(i) <- Value.to_bool v
      | KDyn -> (
          match st.cu.sc_types.(i) with
          | Ast.Integer -> st.sd.(i) <- Value.Int (Value.to_int v)
          | Ast.Real | Ast.Double -> st.sd.(i) <- Value.Real (Value.to_float v)
          | Ast.Logical -> st.sd.(i) <- Value.Bool (Value.to_bool v)))

let array st name =
  match Hashtbl.find_opt st.cu.ar_index name with
  | Some i -> st.arrs.(i)
  | None -> error "array '%s' is not declared" name

let has_array st name = Hashtbl.mem st.cu.ar_index name
let array_names st = Array.to_list st.cu.ar_names
