open Autocfd_fortran

(* Same dynamic-error/stop exceptions as the tree-walking machine, so
   callers catch one exception set regardless of engine. *)
let error fmt = Format.kasprintf (fun m -> raise (Machine.Runtime_error m)) fmt

exception Jump of int

(* ------------------------------------------------------------------ *)
(* Compiled unit and runtime state                                     *)
(* ------------------------------------------------------------------ *)

type slot_kind = KInt | KReal | KBool | KDyn

(* Why a field-loop nest did or did not compile to a fused kernel.  A
   closed variant so coverage reports group fallback causes
   deterministically and tests can match constructors; [Other] only
   appears when parsing a reason string this build does not know. *)
type reason =
  | Fused
  | Scalar_subscript  (* subscript reads a scalar the body assigns *)
  | Non_affine_subscript
  | Bound_loop_var
  | Bound_written_scalar
  | Bound_not_integer
  | Rank_mismatch
  | Non_arith_value
  | Non_arith_scalar
  | Logical_in_body
  | Int_division
  | Int_mod
  | Dynamic_exponent
  | Local_bound_in_body
  | Intrinsic_arity of string
  | Unknown_intrinsic of string
  | Undeclared_array
  | Assign_to_loop_var
  | Scalar_assign
  | Bad_assign_target
  | Non_assign_stmt
  | Duplicate_loop_var
  | Loop_var_not_int
  | Loop_var_no_slot
  | Empty_body
  | If_in_body
  | Goto_in_body
  | Io_in_body
  | Comm_in_body
  | Control_in_body
  | Other of string

(* the historical prose, kept verbatim so rendered coverage tables and
   serialized rows are stable across the string->variant change *)
let reason_to_string = function
  | Fused -> "fused"
  | Scalar_subscript -> "subscript depends on a scalar assigned in the loop"
  | Non_affine_subscript -> "non-affine subscript"
  | Bound_loop_var -> "loop bounds depend on a fused loop variable"
  | Bound_written_scalar ->
      "loop bounds depend on a scalar assigned in the loop"
  | Bound_not_integer -> "loop bounds not integer-pure"
  | Rank_mismatch -> "subscript rank mismatch"
  | Non_arith_value -> "non-arithmetic value in body"
  | Non_arith_scalar -> "non-arithmetic scalar in body"
  | Logical_in_body -> "logical expression in body"
  | Int_division -> "integer division in body"
  | Int_mod -> "integer mod in body"
  | Dynamic_exponent -> "dynamic integer exponent in body"
  | Local_bound_in_body -> "local-bound expression in body"
  | Intrinsic_arity name -> "intrinsic " ^ name ^ " arity"
  | Unknown_intrinsic name -> "unsupported intrinsic " ^ name
  | Undeclared_array -> "assignment to an undeclared array"
  | Assign_to_loop_var -> "assignment to a loop variable in body"
  | Scalar_assign -> "scalar assignment in body"
  | Bad_assign_target -> "unsupported assignment target"
  | Non_assign_stmt -> "non-assignment statement in body"
  | Duplicate_loop_var -> "duplicate loop variable in nest"
  | Loop_var_not_int -> "loop variable not integer"
  | Loop_var_no_slot -> "loop variable has no slot"
  | Empty_body -> "empty loop body"
  | If_in_body -> "IF in loop body"
  | Goto_in_body -> "GOTO in loop body"
  | Io_in_body -> "I/O in loop body"
  | Comm_in_body -> "communication in loop body"
  | Control_in_body -> "control flow in loop body"
  | Other s -> s

let reason_of_string s =
  let fixed =
    [
      Fused; Scalar_subscript; Non_affine_subscript; Bound_loop_var;
      Bound_written_scalar; Bound_not_integer; Rank_mismatch; Non_arith_value;
      Non_arith_scalar; Logical_in_body; Int_division; Int_mod;
      Dynamic_exponent; Local_bound_in_body; Undeclared_array;
      Assign_to_loop_var; Scalar_assign; Bad_assign_target; Non_assign_stmt;
      Duplicate_loop_var; Loop_var_not_int; Loop_var_no_slot; Empty_body;
      If_in_body; Goto_in_body; Io_in_body; Comm_in_body; Control_in_body;
    ]
  in
  match List.find_opt (fun r -> reason_to_string r = s) fixed with
  | Some r -> r
  | None ->
      let strip ~prefix ~suffix s =
        let lp = String.length prefix and ls = String.length suffix in
        let n = String.length s in
        if
          n > lp + ls
          && String.sub s 0 lp = prefix
          && String.sub s (n - ls) ls = suffix
        then Some (String.sub s lp (n - lp - ls))
        else None
      in
      (match strip ~prefix:"intrinsic " ~suffix:" arity" s with
      | Some name -> Intrinsic_arity name
      | None -> (
          match strip ~prefix:"unsupported intrinsic " ~suffix:"" s with
          | Some name -> Unknown_intrinsic name
          | None -> Other s))

(* Static fusibility of one field-loop nest (a DO whose nest writes at
   least one declared array element): either it compiled to a fused
   kernel, or the reason it stayed on the closure IR. *)
type coverage_entry = {
  cov_line : int;  (* source line of the nest's outermost DO *)
  cov_vars : string list;  (* loop variables, outermost first *)
  cov_fused : bool;
  cov_reason : reason;  (* [Fused], or why the nest fell back *)
  cov_frag : Ast.fission_tag option;
      (* provenance when the nest is a loop-fission fragment *)
}

type cu = {
  cu_unit : Ast.program_unit;
  sc_index : (string, int) Hashtbl.t;
  sc_names : string array;
  sc_kinds : slot_kind array;
  sc_types : Ast.dtype array;  (* assignment conversion target per slot *)
  sc_init : (int * Value.scalar) list;  (* PARAMETER + scalar DATA *)
  ar_index : (string, int) Hashtbl.t;
  ar_names : string array;  (* sorted *)
  ar_template : Value.arr array;  (* bounds + DATA contents, copied per state *)
  mutable cu_body : state -> unit;
  mutable cu_cov : coverage_entry list;  (* field-loop nests, program order *)
}

and state = {
  cu : cu;
  sf : float array;  (* real slots *)
  si : int array;  (* integer slots *)
  sb : bool array;  (* logical slots *)
  sd : Value.scalar array;  (* dynamically-typed slots (rare) *)
  sset : bool array;
  arrs : Value.arr array;
  adata : float array array;  (* arrs.(i).data, one indirection less *)
  mutable flops : float;
  mutable input : float list;
  mutable out_rev : string list;
  hooks : hooks;
  (* per-nest profile, indexed like cu_cov (one slot per coverage entry);
     self totals: an entry's own flops/bytes exclude inner profiled nests *)
  kcalls : int array;
  kflops : float array;
  kbytes : float array;
  mutable kmoved : float;  (* bytes touched by fused kernels, cumulative *)
  mutable kattr_flops : float;  (* flops already attributed to some nest *)
  mutable kattr_bytes : float;
}

and hooks = {
  h_block : (int -> int * int) option;
  h_comm : state -> sid:int -> Ast.comm -> unit;
  h_pipe_recv :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_pipe_send :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_read : state -> int -> float array;
  h_write : state -> Value.scalar list -> unit;
}

let default_read st n =
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match st.input with
    | [] -> error "READ: input exhausted"
    | x :: rest ->
        out.(i) <- x;
        st.input <- rest
  done;
  out

let default_write st values =
  let line =
    String.concat " "
      (List.map (fun v -> Format.asprintf "%a" Value.pp_scalar v) values)
  in
  st.out_rev <- line :: st.out_rev

let sequential_hooks =
  {
    h_block = None;
    h_comm =
      (fun _ ~sid:_ _ ->
        error "communication statement on the sequential machine");
    h_pipe_recv =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline recv on the sequential machine");
    h_pipe_send =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline send on the sequential machine");
    h_read = default_read;
    h_write = default_write;
  }

(* Flop accounting: identical increments in identical program positions as
   Machine.charge, so flop totals (and hence simulated compute times) are
   bit-identical. *)
let ch st = st.flops <- st.flops +. 1.0

(* ------------------------------------------------------------------ *)
(* Typed closure IR                                                    *)
(* ------------------------------------------------------------------ *)

type cexp =
  | F of (state -> float)
  | I of (state -> int)
  | B of (state -> bool)
  | D of (state -> Value.scalar)  (* statically unknown: full dispatch *)

let as_float = function
  | F f -> f
  | I f -> fun st -> float_of_int (f st)
  | B f -> fun st -> if f st then 1.0 else 0.0
  | D f -> fun st -> Value.to_float (f st)

let as_int = function
  | I f -> f
  | F f -> fun st -> truncate (f st)  (* = Value.to_int of a Real *)
  | B f -> fun st -> if f st then 1 else 0
  | D f -> fun st -> Value.to_int (f st)

let as_bool = function
  | B f -> f
  | I f -> fun st -> f st <> 0
  | F f -> fun st -> f st <> 0.0
  | D f -> fun st -> Value.to_bool (f st)

let as_scalar = function
  | F f -> fun st -> Value.Real (f st)
  | I f -> fun st -> Value.Int (f st)
  | B f -> fun st -> Value.Bool (f st)
  | D f -> f

(* compile context: the cu minus the body *)
type ctx = {
  x_sc : (string, int) Hashtbl.t;
  x_kinds : slot_kind array;
  x_types : Ast.dtype array;
  x_ar : (string, int) Hashtbl.t;
  x_bounds : (int * int) array array;
  x_fuse : bool;  (* attempt the fused-kernel tier on DO nests *)
  x_record : bool;  (* record coverage entries (off inside fallbacks) *)
  x_cov : coverage_entry list ref;
  x_consts : (string, Value.scalar) Hashtbl.t;
      (* PARAMETER constants never assigned in the body: foldable even
         when the mangled name's implicit type forced a dynamic slot *)
}

let unset_var x : 'a = error "variable '%s' used before being set" x

(* ------------------------------------------------------------------ *)
(* Array references: precomputed strides, fused offsets                *)
(* ------------------------------------------------------------------ *)

let strides_of bounds =
  let n = Array.length bounds in
  let strides = Array.make n 1 in
  let size = ref 1 in
  for d = 0 to n - 1 do
    let lo, hi = bounds.(d) in
    strides.(d) <- !size;
    size := !size * (hi - lo + 1)
  done;
  strides

let base_of bounds strides =
  let b = ref 0 in
  Array.iteri (fun d (lo, _) -> b := !b + (lo * strides.(d))) bounds;
  !b

let idx_str idx =
  String.concat "," (Array.to_list (Array.map string_of_int idx))

(* mirror Machine's wrapped Value.linear_index failure on a read *)
let fail_ref name bounds idx : 'a =
  let n = Array.length bounds in
  if Array.length idx <> n then
    error "%s(%s): Value.linear_index: %d subscripts for rank %d" name
      (idx_str idx) (Array.length idx) n
  else begin
    let msg = ref "" in
    (try
       Array.iteri
         (fun d i ->
           let lo, hi = bounds.(d) in
           if i < lo || i > hi then begin
             msg :=
               Printf.sprintf
                 "Value.linear_index: subscript %d out of bounds %d:%d in \
                  dim %d"
                 i lo hi d;
             raise Exit
           end)
         idx
     with Exit -> ());
    error "%s(%s): %s" name (idx_str idx) !msg
  end

(* mirror Machine.assign's wrapped failure on a write (no index list) *)
let fail_set name bounds idx : 'a =
  let n = Array.length bounds in
  if Array.length idx <> n then
    error "%s: Value.linear_index: %d subscripts for rank %d" name
      (Array.length idx) n
  else begin
    let msg = ref "" in
    (try
       Array.iteri
         (fun d i ->
           let lo, hi = bounds.(d) in
           if i < lo || i > hi then begin
             msg :=
               Printf.sprintf
                 "Value.linear_index: subscript %d out of bounds %d:%d in \
                  dim %d"
                 i lo hi d;
             raise Exit
           end)
         idx
     with Exit -> ());
    error "%s: %s" name !msg
  end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec comp ctx (e : Ast.expr) : cexp =
  match e with
  | Ast.Const_int i -> I (fun _ -> i)
  | Ast.Const_real f -> F (fun _ -> f)
  | Ast.Const_bool b -> B (fun _ -> b)
  | Ast.Const_str s -> D (fun _ -> Value.Str s)
  | Ast.Var x -> comp_var ctx x
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.x_ar name then comp_ref ctx name args
      else comp_intrinsic ctx name args
  | Ast.Unop (Ast.Neg, a) -> (
      match comp ctx a with
      | I f -> I (fun st -> -f st)
      | F f ->
          F
            (fun st ->
              ch st;
              -.f st)
      | B f ->
          F
            (fun st ->
              ch st;
              if f st then -1.0 else -0.0)
      | D f ->
          D
            (fun st ->
              match f st with
              | Value.Int i -> Value.Int (-i)
              | v ->
                  ch st;
                  Value.Real (-.Value.to_float v)))
  | Ast.Unop (Ast.Lnot, a) ->
      let f = as_bool (comp ctx a) in
      B (fun st -> not (f st))
  | Ast.Binop (op, a, b) -> comp_binop ctx op a b
  | Ast.Local_lo (d, a) ->
      let f = as_int (comp ctx a) in
      I
        (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> max v (fst (g d)))
  | Ast.Local_hi (d, a) ->
      let f = as_int (comp ctx a) in
      I
        (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> min v (snd (g d)))

and comp_var ctx x =
  match Hashtbl.find_opt ctx.x_sc x with
  | None -> D (fun _ -> unset_var x)
  | Some i -> (
      match ctx.x_kinds.(i) with
      | KInt -> I (fun st -> if st.sset.(i) then st.si.(i) else unset_var x)
      | KReal -> F (fun st -> if st.sset.(i) then st.sf.(i) else unset_var x)
      | KBool -> B (fun st -> if st.sset.(i) then st.sb.(i) else unset_var x)
      | KDyn -> D (fun st -> if st.sset.(i) then st.sd.(i) else unset_var x))

and comp_ref ctx name args =
  let slot = Hashtbl.find ctx.x_ar name in
  let bounds = ctx.x_bounds.(slot) in
  let rank = Array.length bounds in
  let idxf = Array.of_list (List.map (fun a -> as_int (comp ctx a)) args) in
  if Array.length idxf <> rank then
    F
      (fun st ->
        let idx = Array.map (fun f -> f st) idxf in
        fail_ref name bounds idx)
  else begin
    let strides = strides_of bounds in
    let base = base_of bounds strides in
    match idxf with
    | [| f1 |] ->
        let lo1, hi1 = bounds.(0) in
        F
          (fun st ->
            let i1 = f1 st in
            if i1 < lo1 || i1 > hi1 then fail_ref name bounds [| i1 |]
            else st.adata.(slot).(i1 - lo1))
    | [| f1; f2 |] ->
        let lo1, hi1 = bounds.(0) and lo2, hi2 = bounds.(1) in
        let s2 = strides.(1) in
        F
          (fun st ->
            let i1 = f1 st in
            let i2 = f2 st in
            if i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 then
              fail_ref name bounds [| i1; i2 |]
            else st.adata.(slot).(i1 + (i2 * s2) - base))
    | [| f1; f2; f3 |] ->
        let lo1, hi1 = bounds.(0)
        and lo2, hi2 = bounds.(1)
        and lo3, hi3 = bounds.(2) in
        let s2 = strides.(1) and s3 = strides.(2) in
        F
          (fun st ->
            let i1 = f1 st in
            let i2 = f2 st in
            let i3 = f3 st in
            if
              i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 || i3 < lo3
              || i3 > hi3
            then fail_ref name bounds [| i1; i2; i3 |]
            else st.adata.(slot).(i1 + (i2 * s2) + (i3 * s3) - base))
    | _ ->
        F
          (fun st ->
            let idx = Array.map (fun f -> f st) idxf in
            let off = ref (-base) in
            Array.iteri
              (fun d i ->
                let lo, hi = bounds.(d) in
                if i < lo || i > hi then fail_ref name bounds idx;
                off := !off + (i * strides.(d)))
              idx;
            st.adata.(slot).(!off))
  end

(* the (state -> float -> unit) store side of an array element *)
and comp_ref_set ctx name args : state -> float -> unit =
  let slot = Hashtbl.find ctx.x_ar name in
  let bounds = ctx.x_bounds.(slot) in
  let rank = Array.length bounds in
  let idxf = Array.of_list (List.map (fun a -> as_int (comp ctx a)) args) in
  if Array.length idxf <> rank then fun st _ ->
    let idx = Array.map (fun f -> f st) idxf in
    fail_set name bounds idx
  else begin
    let strides = strides_of bounds in
    let base = base_of bounds strides in
    match idxf with
    | [| f1 |] ->
        let lo1, hi1 = bounds.(0) in
        fun st v ->
          let i1 = f1 st in
          if i1 < lo1 || i1 > hi1 then fail_set name bounds [| i1 |]
          else st.adata.(slot).(i1 - lo1) <- v
    | [| f1; f2 |] ->
        let lo1, hi1 = bounds.(0) and lo2, hi2 = bounds.(1) in
        let s2 = strides.(1) in
        fun st v ->
          let i1 = f1 st in
          let i2 = f2 st in
          if i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 then
            fail_set name bounds [| i1; i2 |]
          else st.adata.(slot).(i1 + (i2 * s2) - base) <- v
    | [| f1; f2; f3 |] ->
        let lo1, hi1 = bounds.(0)
        and lo2, hi2 = bounds.(1)
        and lo3, hi3 = bounds.(2) in
        let s2 = strides.(1) and s3 = strides.(2) in
        fun st v ->
          let i1 = f1 st in
          let i2 = f2 st in
          let i3 = f3 st in
          if
            i1 < lo1 || i1 > hi1 || i2 < lo2 || i2 > hi2 || i3 < lo3
            || i3 > hi3
          then fail_set name bounds [| i1; i2; i3 |]
          else st.adata.(slot).(i1 + (i2 * s2) + (i3 * s3) - base) <- v
    | _ ->
        fun st v ->
          let idx = Array.map (fun f -> f st) idxf in
          let off = ref (-base) in
          Array.iteri
            (fun d i ->
              let lo, hi = bounds.(d) in
              if i < lo || i > hi then fail_set name bounds idx;
              off := !off + (i * strides.(d)))
            idx;
          st.adata.(slot).(!off) <- v
  end

and comp_binop ctx op a b =
  let ca = comp ctx a and cb = comp ctx b in
  let open Ast in
  match op with
  | And ->
      let fa = as_bool ca and fb = as_bool cb in
      B (fun st -> fa st && fb st)
  | Or ->
      let fa = as_bool ca and fb = as_bool cb in
      B (fun st -> fa st || fb st)
  | Lt | Le | Gt | Ge | Eq | Ne -> (
      let fa = as_float ca and fb = as_float cb in
      let cmp g =
        B
          (fun st ->
            let x = fa st in
            let y = fb st in
            g x y)
      in
      match op with
      | Lt -> cmp (fun x y -> x < y)
      | Le -> cmp (fun x y -> x <= y)
      | Gt -> cmp (fun x y -> x > y)
      | Ge -> cmp (fun x y -> x >= y)
      | Eq -> cmp (fun x y -> x = y)
      | Ne -> cmp (fun x y -> x <> y)
      | _ -> assert false)
  | Add | Sub | Mul | Div | Pow -> (
      match (ca, cb) with
      | I fa, I fb -> (
          match op with
          | Add -> I (fun st -> fa st + fb st)
          | Sub -> I (fun st -> fa st - fb st)
          | Mul -> I (fun st -> fa st * fb st)
          | Div ->
              I
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  if y = 0 then error "integer division by zero" else x / y)
          | Pow -> (
              let ipow x y =
                let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
                pow 1 y
              in
              (* a non-negative constant exponent keeps the result integer *)
              match b with
              | Ast.Const_int y when y >= 0 ->
                  I (fun st -> ipow (fa st) y)
              | _ ->
                  D
                    (fun st ->
                      let x = fa st in
                      let y = fb st in
                      if y < 0 then
                        Value.Real
                          (Float.pow (float_of_int x) (float_of_int y))
                      else Value.Int (ipow x y)))
          | _ -> assert false)
      | (D _, _ | _, D _) ->
          (* a statically-unknown operand: replicate the machine's dynamic
             dispatch exactly (including its Int/Int no-charge rule) *)
          let fa = as_scalar ca and fb = as_scalar cb in
          D
            (fun st ->
              let va = fa st in
              let vb = fb st in
              match (va, vb) with
              | Value.Int x, Value.Int y -> (
                  match op with
                  | Add -> Value.Int (x + y)
                  | Sub -> Value.Int (x - y)
                  | Mul -> Value.Int (x * y)
                  | Div ->
                      if y = 0 then error "integer division by zero"
                      else Value.Int (x / y)
                  | Pow ->
                      if y < 0 then
                        Value.Real
                          (Float.pow (float_of_int x) (float_of_int y))
                      else
                        let rec pow acc n =
                          if n = 0 then acc else pow (acc * x) (n - 1)
                        in
                        Value.Int (pow 1 y)
                  | _ -> assert false)
              | va, vb -> (
                  ch st;
                  let x = Value.to_float va and y = Value.to_float vb in
                  match op with
                  | Add -> Value.Real (x +. y)
                  | Sub -> Value.Real (x -. y)
                  | Mul -> Value.Real (x *. y)
                  | Div -> Value.Real (x /. y)
                  | Pow -> Value.Real (Float.pow x y)
                  | _ -> assert false))
      | _ -> (
          (* at least one statically-real (or logical) operand: the float
             fast path, one flop charged like the machine's mixed case *)
          let fa = as_float ca and fb = as_float cb in
          let arith g =
            F
              (fun st ->
                let x = fa st in
                let y = fb st in
                ch st;
                g x y)
          in
          match op with
          | Add -> arith (fun x y -> x +. y)
          | Sub -> arith (fun x y -> x -. y)
          | Mul -> arith (fun x y -> x *. y)
          | Div -> arith (fun x y -> x /. y)
          | Pow -> arith Float.pow
          | _ -> assert false))

and comp_intrinsic ctx name args =
  let bad fmt = Printf.ksprintf (fun m -> F (fun _ -> error "%s" m)) fmt in
  let f1 g =
    match args with
    | [ a ] ->
        let f = as_float (comp ctx a) in
        F
          (fun st ->
            ch st;
            g (f st))
    | _ -> bad "intrinsic %s expects 1 argument" name
  in
  let fold2 g =
    match args with
    | a :: rest when rest <> [] ->
        let fa = as_float (comp ctx a) in
        let frest = List.map (fun e -> as_float (comp ctx e)) rest in
        F
          (fun st ->
            List.fold_left
              (fun acc f ->
                ch st;
                g acc (f st))
              (fa st) frest)
    | _ -> bad "intrinsic %s expects at least 2 arguments" name
  in
  match name with
  | "abs" -> (
      match args with
      | [ a ] -> (
          match comp ctx a with
          | I f -> I (fun st -> abs (f st))
          | F f ->
              F
                (fun st ->
                  ch st;
                  Float.abs (f st))
          | B f ->
              F
                (fun st ->
                  ch st;
                  if f st then 1.0 else 0.0)
          | D f ->
              D
                (fun st ->
                  match f st with
                  | Value.Int i -> Value.Int (abs i)
                  | v ->
                      ch st;
                      Value.Real (Float.abs (Value.to_float v))))
      | _ -> bad "abs expects 1 argument")
  | "sqrt" -> f1 Float.sqrt
  | "exp" -> f1 Float.exp
  | "log" -> f1 Float.log
  | "sin" -> f1 Float.sin
  | "cos" -> f1 Float.cos
  | "tan" -> f1 Float.tan
  | "atan" -> f1 Float.atan
  | "max" | "amax1" -> fold2 Float.max
  | "min" | "amin1" -> fold2 Float.min
  | "max0" -> (
      match args with
      | [ a; b ] ->
          let fa = as_int (comp ctx a) and fb = as_int (comp ctx b) in
          I (fun st -> max (fa st) (fb st))
      | _ -> bad "max0 expects 2 arguments")
  | "min0" -> (
      match args with
      | [ a; b ] ->
          let fa = as_int (comp ctx a) and fb = as_int (comp ctx b) in
          I (fun st -> min (fa st) (fb st))
      | _ -> bad "min0 expects 2 arguments")
  | "mod" -> (
      match args with
      | [ a; b ] -> (
          match (comp ctx a, comp ctx b) with
          | I fa, I fb ->
              I
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  if y = 0 then error "mod by zero" else x mod y)
          | (D _, _ | _, D _) as pair ->
              let fa = as_scalar (fst pair) and fb = as_scalar (snd pair) in
              D
                (fun st ->
                  match (fa st, fb st) with
                  | Value.Int x, Value.Int y ->
                      if y = 0 then error "mod by zero" else Value.Int (x mod y)
                  | va, vb ->
                      ch st;
                      Value.Real
                        (Float.rem (Value.to_float va) (Value.to_float vb)))
          | ca, cb ->
              let fa = as_float ca and fb = as_float cb in
              F
                (fun st ->
                  let x = fa st in
                  let y = fb st in
                  ch st;
                  Float.rem x y))
      | _ -> bad "mod expects 2 arguments")
  | "float" | "real" | "dble" -> (
      match args with
      | [ a ] -> F (as_float (comp ctx a))
      | _ -> bad "%s expects 1 argument" name)
  | "int" -> (
      match args with
      | [ a ] -> I (as_int (comp ctx a))
      | _ -> bad "int expects 1 argument")
  | "sign" -> (
      match args with
      | [ a; b ] ->
          let fa = as_float (comp ctx a) and fb = as_float (comp ctx b) in
          F
            (fun st ->
              ch st;
              let x = fa st in
              let y = fb st in
              if y >= 0.0 then Float.abs x else -.Float.abs x)
      | _ -> bad "sign expects 2 arguments")
  | _ ->
      bad "'%s' is neither a declared array nor a supported intrinsic" name

(* ------------------------------------------------------------------ *)
(* Scalar stores                                                       *)
(* ------------------------------------------------------------------ *)

(* store an already-int value (DO variables) into a slot, converting per
   the slot's assignment type like Machine.set_scalar on Value.Int *)
let int_store ctx i : state -> int -> unit =
  match ctx.x_kinds.(i) with
  | KInt ->
      fun st v ->
        st.si.(i) <- v;
        st.sset.(i) <- true
  | KReal ->
      fun st v ->
        st.sf.(i) <- float_of_int v;
        st.sset.(i) <- true
  | KBool ->
      fun st v ->
        st.sb.(i) <- v <> 0;
        st.sset.(i) <- true
  | KDyn -> (
      match ctx.x_types.(i) with
      | Ast.Integer ->
          fun st v ->
            st.sd.(i) <- Value.Int v;
            st.sset.(i) <- true
      | Ast.Real | Ast.Double ->
          fun st v ->
            st.sd.(i) <- Value.Real (float_of_int v);
            st.sset.(i) <- true
      | Ast.Logical ->
          fun st v ->
            st.sd.(i) <- Value.Bool (v <> 0);
            st.sset.(i) <- true)

(* store a float (READ values arrive as Value.Real) *)
let float_store ctx i : state -> float -> unit =
  match ctx.x_kinds.(i) with
  | KInt ->
      fun st v ->
        st.si.(i) <- truncate v;
        st.sset.(i) <- true
  | KReal ->
      fun st v ->
        st.sf.(i) <- v;
        st.sset.(i) <- true
  | KBool ->
      fun st v ->
        st.sb.(i) <- v <> 0.0;
        st.sset.(i) <- true
  | KDyn -> (
      match ctx.x_types.(i) with
      | Ast.Integer ->
          fun st v ->
            st.sd.(i) <- Value.Int (truncate v);
            st.sset.(i) <- true
      | Ast.Real | Ast.Double ->
          fun st v ->
            st.sd.(i) <- Value.Real v;
            st.sset.(i) <- true
      | Ast.Logical ->
          fun st v ->
            st.sd.(i) <- Value.Bool (v <> 0.0);
            st.sset.(i) <- true)

(* ------------------------------------------------------------------ *)
(* Fused-kernel tier                                                   *)
(* ------------------------------------------------------------------ *)

(* A DO nest whose peeled body is a straight-line sequence of assignments
   to declared array elements compiles to one specialized kernel instead
   of a closure tree: loop bounds are evaluated once at entry, every
   subscript is proven in-range for the whole trip space with
   Autocfd_util.Interval arithmetic, element access goes through
   Array.unsafe_get/set on the flat data with per-reference offset deltas,
   and the nest's flops are charged in a single batched update of
   [trips * flops-per-iteration] — bit-identical to the incremental
   charges because flop totals are integer-valued floats (exact below
   2^53).  Any precondition the analyzer or the runtime prover cannot
   discharge falls back to the closure IR, which reproduces the
   tree-walking machine's behavior (including error messages and partial
   updates) exactly. *)

exception Unfusable of reason

module Iv = Autocfd_util.Interval

(* entry-invariant affine form of a subscript over the fused loop
   variables: [sum coeff_l * var_l + const + sum mul_s * slot_s] *)
type aff = {
  af_coeff : int array;  (* per fused level, compile-time constant *)
  af_const : int;
  af_syms : (int * int) list;  (* (KInt slot, multiplier) *)
}

type fenv = {
  e_ctx : ctx;
  e_m : int;  (* nest depth *)
  e_lvl : (string, int) Hashtbl.t;  (* fused loop var -> level *)
  e_reads : int list ref;  (* scalar slots read anywhere in the kernel *)
  e_refs : (int * aff array) list ref;  (* registered refs, reversed *)
  e_nrefs : int ref;
  e_flops : int ref;  (* float ops per innermost iteration *)
  e_wrb : (string, unit) Hashtbl.t;
      (* scalars assigned anywhere in the body: barred from bounds and
         subscripts (those are resolved once at nest entry) *)
  e_wrscal : (int, unit) Hashtbl.t;
      (* scalar slots assigned by an earlier body statement: reads of
         these observe the current iteration, never the entry value, so
         they are exempt from the entry sset precheck *)
}

let aff_zero env = { af_coeff = Array.make env.e_m 0; af_const = 0; af_syms = [] }

let aff_scale c a =
  {
    af_coeff = Array.map (fun k -> c * k) a.af_coeff;
    af_const = c * a.af_const;
    af_syms = List.map (fun (i, mu) -> (i, c * mu)) a.af_syms;
  }

let aff_add a b =
  {
    af_coeff = Array.mapi (fun l k -> k + b.af_coeff.(l)) a.af_coeff;
    af_const = a.af_const + b.af_const;
    af_syms = a.af_syms @ b.af_syms;
  }

(* compile-time integer folding through never-assigned PARAMETER
   constants (x_consts).  Only [Value.Int] constants participate, so a
   folded expression is exactly what the machine's integer arithmetic
   computes, charges no flops, and cannot fail: OCaml's [/] truncates
   toward zero like the machine's integer division, and a zero divisor
   refuses to fold (the nest then stays on the closure IR, which
   reproduces the machine's runtime error).  This is what lets nests
   like [i - ni/2] in a body or [nj / 2] in a bound reach the fused
   tier. *)
let rec cfold env (e : Ast.expr) : int option =
  match e with
  | Ast.Const_int c -> Some c
  | Ast.Var x -> (
      match Hashtbl.find_opt env.e_ctx.x_consts x with
      | Some (Value.Int c) -> Some c
      | _ -> None)
  | Ast.Unop (Ast.Neg, a) -> Option.map (fun c -> -c) (cfold env a)
  | Ast.Binop (op, a, b) -> (
      match (cfold env a, cfold env b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x + y)
          | Ast.Sub -> Some (x - y)
          | Ast.Mul -> Some (x * y)
          | Ast.Div -> if y = 0 then None else Some (x / y)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* affine decomposition of a subscript; rejects anything the machine
   could fail on (so entry-time evaluation is exact).  The bool result is
   true when the machine evaluates the expression in float arithmetic (an
   integral real-typed constant appears): each float operation then
   charges one flop per iteration, counted into [e_flops].  Scalars the
   body assigns are barred — the kernel resolves subscript residuals once
   at entry. *)
let rec adecomp env (e : Ast.expr) : aff * bool =
  match e with
  | Ast.Const_int c -> ({ (aff_zero env) with af_const = c }, false)
  | Ast.Const_real r when Float.is_integer r ->
      ({ (aff_zero env) with af_const = truncate r }, true)
  | Ast.Var x -> (
      match Hashtbl.find_opt env.e_lvl x with
      | Some l ->
          let coeff = Array.make env.e_m 0 in
          coeff.(l) <- 1;
          ({ (aff_zero env) with af_coeff = coeff }, false)
      | None ->
          if Hashtbl.mem env.e_wrb x then
            raise (Unfusable Scalar_subscript)
          else (
            match Hashtbl.find_opt env.e_ctx.x_sc x with
            | Some i when env.e_ctx.x_kinds.(i) = KInt ->
                env.e_reads := i :: !(env.e_reads);
                ({ (aff_zero env) with af_syms = [ (i, 1) ] }, false)
            | _ -> (
                match Hashtbl.find_opt env.e_ctx.x_consts x with
                | Some (Value.Int c) ->
                    ({ (aff_zero env) with af_const = c }, false)
                | Some (Value.Real r) when Float.is_integer r ->
                    ({ (aff_zero env) with af_const = truncate r }, true)
                | _ -> raise (Unfusable Non_affine_subscript))))
  | Ast.Unop (Ast.Neg, a) ->
      let fa, re = adecomp env a in
      if re then incr env.e_flops;
      (aff_scale (-1) fa, re)
  | Ast.Binop (Ast.Add, a, b) ->
      let fa, ra = adecomp env a in
      let fb, rb = adecomp env b in
      let re = ra || rb in
      if re then incr env.e_flops;
      (aff_add fa fb, re)
  | Ast.Binop (Ast.Sub, a, b) ->
      let fa, ra = adecomp env a in
      let fb, rb = adecomp env b in
      let re = ra || rb in
      if re then incr env.e_flops;
      (aff_add fa (aff_scale (-1) fb), re)
  | Ast.Binop (Ast.Mul, a, b) -> (
      match cfold env a with
      | Some c ->
          let fb, re = adecomp env b in
          if re then incr env.e_flops;
          (aff_scale c fb, re)
      | None -> (
          match cfold env b with
          | Some c ->
              let fa, re = adecomp env a in
              if re then incr env.e_flops;
              (aff_scale c fa, re)
          | None -> raise (Unfusable Non_affine_subscript)))
  | _ -> (
      (* e.g. an integer division of constants: fold the whole
         subexpression (no flops — machine integer arithmetic) *)
      match cfold env e with
      | Some c -> ({ (aff_zero env) with af_const = c }, false)
      | None -> raise (Unfusable Non_affine_subscript))

(* entry-invariant, error-free integer-valued expression (loop bounds);
   anything else keeps the nest on the closure IR *)
let rec icomp env (fl : int ref) (e : Ast.expr) : (state -> int) * bool =
  (* the [bool] is true when the machine evaluates this subexpression in
     float arithmetic (a real-typed constant appears somewhere inside):
     every float operation then charges one flop, counted into [fl] so
     the kernel can replay the machine's bound-evaluation charges
     exactly.  Only integral float constants are admitted, which makes
     truncating integer arithmetic bit-identical to the machine's
     truncate-at-the-end float evaluation. *)
  match e with
  | Ast.Const_int c -> ((fun _ -> c), false)
  | Ast.Const_real r when Float.is_integer r ->
      let c = truncate r in
      ((fun _ -> c), true)
  | Ast.Var x ->
      if Hashtbl.mem env.e_lvl x then
        raise (Unfusable Bound_loop_var)
      else if Hashtbl.mem env.e_wrb x then
        raise (Unfusable Bound_written_scalar)
      else (
        match Hashtbl.find_opt env.e_ctx.x_sc x with
        | Some i when env.e_ctx.x_kinds.(i) = KInt ->
            env.e_reads := i :: !(env.e_reads);
            ((fun st -> Array.unsafe_get st.si i), false)
        | _ -> (
            match Hashtbl.find_opt env.e_ctx.x_consts x with
            | Some (Value.Int c) -> ((fun _ -> c), false)
            | Some (Value.Real r) when Float.is_integer r ->
                let c = truncate r in
                ((fun _ -> c), true)
            | _ -> raise (Unfusable Bound_not_integer)))
  | Ast.Unop (Ast.Neg, a) ->
      let f, re = icomp env fl a in
      if re then incr fl;
      ((fun st -> -f st), re)
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul) as op), a, b) ->
      let fa, ra = icomp env fl a in
      let fb, rb = icomp env fl b in
      let re = ra || rb in
      if re then incr fl;
      let g =
        match op with Ast.Add -> ( + ) | Ast.Sub -> ( - ) | _ -> ( * )
      in
      ((fun st -> g (fa st) (fb st)), re)
  | Ast.Binop (Ast.Div, a, b) -> (
      (* integer division by a nonzero constant: error-free, truncates
         toward zero exactly like the machine.  The float-arithmetic
         path (truncate-at-the-end of a float division) is rejected —
         float rounding could disagree with integer division.  (At a
         truncation boundary [icomp_trunc] admits the float path.) *)
      match cfold env b with
      | Some c when c <> 0 ->
          let fa, ra = icomp env fl a in
          if ra then raise (Unfusable Bound_not_integer);
          ((fun st -> fa st / c), false)
      | _ -> raise (Unfusable Bound_not_integer))
  | Ast.Local_lo (d, a) ->
      (* the machine truncates the operand (eval_int) before clamping *)
      let f = icomp_trunc env fl a in
      ( (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> max v (fst (g d))),
        false )
  | Ast.Local_hi (d, a) ->
      let f = icomp_trunc env fl a in
      ( (fun st ->
          let v = f st in
          match st.hooks.h_block with
          | None -> v
          | Some g -> min v (snd (g d))),
        false )
  | _ -> raise (Unfusable Bound_not_integer)

(* integer value at a truncation boundary — a whole DO bound or the
   operand of Local_lo/Local_hi, where the machine evaluates the full
   Value and truncates once ([Machine.eval_int]).  A division whose
   quotient feeds directly into that truncation may take the machine's
   float path: the numerator is integer-valued (icomp truncates only at
   integral leaves, which is lossless), so [truncate (va /. c)] is the
   machine's truncate-at-the-end result bit-for-bit, and the division
   charges the one flop the machine charges for real arithmetic. *)
and icomp_trunc env (fl : int ref) (e : Ast.expr) : state -> int =
  match e with
  | Ast.Binop (Ast.Div, a, b) -> (
      match cfold env b with
      | Some c when c <> 0 ->
          let fa, ra = icomp env fl a in
          if ra then begin
            incr fl;
            fun st -> truncate (float_of_int (fa st) /. float_of_int c)
          end
          else fun st -> fa st / c
      | _ -> raise (Unfusable Bound_not_integer))
  | e -> fst (icomp env fl e)

(* body expressions: closures over (state, ref offsets, loop var values),
   flops counted statically into [e_flops] (the kernel never touches
   [st.flops] per iteration) *)
type fe =
  | Ff of (state -> int array -> int array -> float)
  | Fi of (state -> int array -> int array -> int)

let as_ff = function
  | Ff f -> f
  | Fi f -> fun st offs vals -> float_of_int (f st offs vals)

let as_fi = function
  | Fi f -> f
  | Ff f -> fun st offs vals -> truncate (f st offs vals)

let reg_ref env slot (args : Ast.expr list) : int =
  let bounds = env.e_ctx.x_bounds.(slot) in
  if List.length args <> Array.length bounds then
    raise (Unfusable Rank_mismatch);
  let affs = Array.of_list (List.map (fun e -> fst (adecomp env e)) args) in
  let id = !(env.e_nrefs) in
  incr env.e_nrefs;
  env.e_refs := (slot, affs) :: !(env.e_refs);
  id

let rec fcomp env (e : Ast.expr) : fe =
  match e with
  | Ast.Const_int c -> Fi (fun _ _ _ -> c)
  | Ast.Const_real f -> Ff (fun _ _ _ -> f)
  | Ast.Const_bool _ | Ast.Const_str _ ->
      raise (Unfusable Non_arith_value)
  | Ast.Var x -> (
      match Hashtbl.find_opt env.e_lvl x with
      | Some l -> Fi (fun _ _ vals -> Array.unsafe_get vals l)
      | None -> (
          match Hashtbl.find_opt env.e_ctx.x_sc x with
          | Some i when env.e_ctx.x_kinds.(i) = KInt ->
              (* slots already assigned by an earlier body statement hold
                 this iteration's value, never the entry value: exempt
                 from the entry sset precheck *)
              if not (Hashtbl.mem env.e_wrscal i) then
                env.e_reads := i :: !(env.e_reads);
              Fi (fun st _ _ -> Array.unsafe_get st.si i)
          | Some i when env.e_ctx.x_kinds.(i) = KReal ->
              if not (Hashtbl.mem env.e_wrscal i) then
                env.e_reads := i :: !(env.e_reads);
              Ff (fun st _ _ -> Array.unsafe_get st.sf i)
          | _ -> (
              match Hashtbl.find_opt env.e_ctx.x_consts x with
              | Some (Value.Int c) -> Fi (fun _ _ _ -> c)
              | Some (Value.Real r) -> Ff (fun _ _ _ -> r)
              | _ -> raise (Unfusable Non_arith_scalar))))
  | Ast.Ref (name, args) -> (
      match Hashtbl.find_opt env.e_ctx.x_ar name with
      | Some slot ->
          let id = reg_ref env slot args in
          Ff
            (fun st offs _ ->
              Array.unsafe_get
                (Array.unsafe_get st.adata slot)
                (Array.unsafe_get offs id))
      | None -> fintr env name args)
  | Ast.Unop (Ast.Neg, a) -> (
      match fcomp env a with
      | Fi f -> Fi (fun st offs vals -> -f st offs vals)
      | Ff f ->
          incr env.e_flops;
          Ff (fun st offs vals -> -.f st offs vals))
  | Ast.Unop (Ast.Lnot, _) -> raise (Unfusable Logical_in_body)
  | Ast.Binop (op, a, b) -> (
      let ca = fcomp env a in
      let cb = fcomp env b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow -> (
          match (ca, cb) with
          | Fi fa, Fi fb -> (
              match op with
              | Ast.Add -> Fi (fun st o v -> fa st o v + fb st o v)
              | Ast.Sub -> Fi (fun st o v -> fa st o v - fb st o v)
              | Ast.Mul -> Fi (fun st o v -> fa st o v * fb st o v)
              | Ast.Div -> (
                  (* by a nonzero constant only: error-free, and OCaml's
                     [/] truncates toward zero like the machine's
                     integer division; charges no flops *)
                  match cfold env b with
                  | Some c when c <> 0 -> Fi (fun st o v -> fa st o v / c)
                  | _ -> raise (Unfusable Int_division))
              | Ast.Pow -> (
                  match cfold env b with
                  | Some y when y >= 0 ->
                      Fi
                        (fun st o v ->
                          let x = fa st o v in
                          let rec pow acc n =
                            if n = 0 then acc else pow (acc * x) (n - 1)
                          in
                          pow 1 y)
                  | _ -> raise (Unfusable Dynamic_exponent))
              | _ -> assert false)
          | _ ->
              let fa = as_ff ca and fb = as_ff cb in
              incr env.e_flops;
              let arith g = Ff (fun st o v -> g (fa st o v) (fb st o v)) in
              (match op with
              | Ast.Add -> arith (fun x y -> x +. y)
              | Ast.Sub -> arith (fun x y -> x -. y)
              | Ast.Mul -> arith (fun x y -> x *. y)
              | Ast.Div -> arith (fun x y -> x /. y)
              | Ast.Pow -> arith Float.pow
              | _ -> assert false))
      | _ -> raise (Unfusable Logical_in_body))
  | Ast.Local_lo _ | Ast.Local_hi _ ->
      raise (Unfusable Local_bound_in_body)

and fintr env name args : fe =
  let f1 g =
    match args with
    | [ a ] ->
        let f = as_ff (fcomp env a) in
        incr env.e_flops;
        Ff (fun st o v -> g (f st o v))
    | _ -> raise (Unfusable (Intrinsic_arity name))
  in
  match name with
  | "abs" -> (
      match args with
      | [ a ] -> (
          match fcomp env a with
          | Fi f -> Fi (fun st o v -> abs (f st o v))
          | Ff f ->
              incr env.e_flops;
              Ff (fun st o v -> Float.abs (f st o v)))
      | _ -> raise (Unfusable (Intrinsic_arity "abs")))
  | "sqrt" -> f1 Float.sqrt
  | "exp" -> f1 Float.exp
  | "log" -> f1 Float.log
  | "sin" -> f1 Float.sin
  | "cos" -> f1 Float.cos
  | "tan" -> f1 Float.tan
  | "atan" -> f1 Float.atan
  | "max" | "amax1" | "min" | "amin1" -> (
      let g = if name = "max" || name = "amax1" then Float.max else Float.min in
      match args with
      | a :: rest when rest <> [] ->
          let fa = as_ff (fcomp env a) in
          let frest =
            Array.of_list (List.map (fun e -> as_ff (fcomp env e)) rest)
          in
          env.e_flops := !(env.e_flops) + Array.length frest;
          Ff
            (fun st o v ->
              let acc = ref (fa st o v) in
              for i = 0 to Array.length frest - 1 do
                acc := g !acc ((Array.unsafe_get frest i) st o v)
              done;
              !acc)
      | _ -> raise (Unfusable (Intrinsic_arity name)))
  | "max0" | "min0" -> (
      match args with
      | [ a; b ] ->
          let fa = as_fi (fcomp env a) and fb = as_fi (fcomp env b) in
          let g = if name = "max0" then max else min in
          Fi (fun st o v -> g (fa st o v) (fb st o v))
      | _ -> raise (Unfusable (Intrinsic_arity name)))
  | "mod" -> (
      match args with
      | [ a; b ] -> (
          match (fcomp env a, fcomp env b) with
          | Fi _, Fi _ -> raise (Unfusable Int_mod)
          | ca, cb ->
              let fa = as_ff ca and fb = as_ff cb in
              incr env.e_flops;
              Ff (fun st o v -> Float.rem (fa st o v) (fb st o v)))
      | _ -> raise (Unfusable (Intrinsic_arity "mod")))
  | "float" | "real" | "dble" -> (
      match args with
      | [ a ] -> Ff (as_ff (fcomp env a))
      | _ -> raise (Unfusable (Intrinsic_arity name)))
  | "int" -> (
      match args with
      | [ a ] -> Fi (as_fi (fcomp env a))
      | _ -> raise (Unfusable (Intrinsic_arity "int")))
  | "sign" -> (
      match args with
      | [ a; b ] ->
          let fa = as_ff (fcomp env a) and fb = as_ff (fcomp env b) in
          incr env.e_flops;
          Ff
            (fun st o v ->
              let x = fa st o v in
              let y = fb st o v in
              if y >= 0.0 then Float.abs x else -.Float.abs x)
      | _ -> raise (Unfusable (Intrinsic_arity "sign")))
  | _ -> raise (Unfusable (Unknown_intrinsic name))

(* one body assignment: rhs into an unsafe store through the target's
   registered reference *)
let comp_kstmt env (s : Ast.stmt) :
    (state -> int array -> int array -> unit) option =
  match s.Ast.s_kind with
  | Ast.Continue -> None
  | Ast.Assign (Ast.Ref (name, args), rhs) -> (
      match Hashtbl.find_opt env.e_ctx.x_ar name with
      | None -> raise (Unfusable Undeclared_array)
      | Some slot ->
          let rf = as_ff (fcomp env rhs) in
          let wid = reg_ref env slot args in
          Some
            (fun st offs vals ->
              let v = rf st offs vals in
              Array.unsafe_set
                (Array.unsafe_get st.adata slot)
                (Array.unsafe_get offs wid)
                v))
  | Ast.Assign (Ast.Var x, rhs) -> (
      (* iteration-local scratch scalar: backed by its own slot, written
         each iteration exactly like the machine (the slot's exit value is
         the last iteration's) *)
      if Hashtbl.mem env.e_lvl x then
        raise (Unfusable Assign_to_loop_var);
      match Hashtbl.find_opt env.e_ctx.x_sc x with
      | Some i when env.e_ctx.x_kinds.(i) = KReal ->
          let rf = as_ff (fcomp env rhs) in
          Hashtbl.replace env.e_wrscal i ();
          Some
            (fun st offs vals ->
              Array.unsafe_set st.sf i (rf st offs vals);
              Array.unsafe_set st.sset i true)
      | Some i when env.e_ctx.x_kinds.(i) = KInt ->
          let rf = as_fi (fcomp env rhs) in
          Hashtbl.replace env.e_wrscal i ();
          Some
            (fun st offs vals ->
              Array.unsafe_set st.si i (rf st offs vals);
              Array.unsafe_set st.sset i true)
      | _ -> raise (Unfusable Scalar_assign))
  | Ast.Assign _ -> raise (Unfusable Bad_assign_target)
  | _ -> raise (Unfusable Non_assign_stmt)

(* structural nest peeling *)
type peeled =
  | P_leaf of Ast.do_loop list * Ast.stmt list  (* levels outer-first *)
  | P_descend  (* nested DOs mixed with other structure: recurse, no entry *)
  | P_bad of reason  (* innermost body holds a non-fusable statement *)

let peel (d : Ast.do_loop) : peeled =
  let rec go acc d =
    let acc = d :: acc in
    let body =
      List.filter
        (fun s -> match s.Ast.s_kind with Ast.Continue -> false | _ -> true)
        d.Ast.do_body
    in
    match body with
    | [ { Ast.s_kind = Ast.Do d'; _ } ] -> go acc d'
    | _ ->
        if
          List.exists
            (fun s -> match s.Ast.s_kind with Ast.Do _ -> true | _ -> false)
            body
        then P_descend
        else if
          List.for_all
            (fun s ->
              match s.Ast.s_kind with Ast.Assign _ -> true | _ -> false)
            body
        then P_leaf (List.rev acc, body)
        else
          P_bad
            (match
               List.find_opt
                 (fun s ->
                   match s.Ast.s_kind with Ast.Assign _ -> false | _ -> true)
                 body
             with
            | Some { Ast.s_kind = Ast.If _; _ } -> If_in_body
            | Some { Ast.s_kind = Ast.Goto _; _ } -> Goto_in_body
            | Some { Ast.s_kind = (Ast.Read _ | Ast.Write _); _ } ->
                Io_in_body
            | Some
                {
                  Ast.s_kind =
                    (Ast.Comm _ | Ast.Pipeline_recv _ | Ast.Pipeline_send _);
                  _;
                } ->
                Comm_in_body
            | _ -> Control_in_body)
  in
  go [] d

(* does the nest write at least one declared array element? *)
let is_field_loop ctx (d : Ast.do_loop) =
  let found = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.s_kind with
      | Ast.Assign (Ast.Ref (n, _), _) when Hashtbl.mem ctx.x_ar n ->
          found := true
      | _ -> ())
    d.Ast.do_body;
  !found

(* flat per-reference kernel info *)
type krf = {
  k_slot : int;
  k_bounds : (int * int) array;
  k_strides : int array;
  k_base : int;
  k_coeff : int array array;  (* per dim, per level *)
  k_resid : (state -> int) array;  (* per dim, entry-invariant *)
  k_flat : int array;  (* per level: sum over dims of coeff * stride *)
}

(* Build the kernel for a peeled nest, or raise Unfusable.  The result
   takes the closure-IR fallback (compiled separately) and yields the
   nest's [state -> unit]. *)
let kernel_of ctx (levels : Ast.do_loop list) (stmts : Ast.stmt list) :
    (state -> unit) -> state -> unit =
  let m = List.length levels in
  let lvl = Hashtbl.create 8 in
  let var_stores =
    Array.of_list
      (List.mapi
         (fun l (d : Ast.do_loop) ->
           let x = d.Ast.do_var in
           if Hashtbl.mem lvl x then
             raise (Unfusable Duplicate_loop_var);
           match Hashtbl.find_opt ctx.x_sc x with
           | Some i when ctx.x_kinds.(i) = KInt ->
               Hashtbl.add lvl x l;
               int_store ctx i
           | Some _ -> raise (Unfusable Loop_var_not_int)
           | None -> raise (Unfusable Loop_var_no_slot))
         levels)
  in
  let wrb = Hashtbl.create 8 in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.s_kind with
      | Ast.Assign (Ast.Var x, _) -> Hashtbl.replace wrb x ()
      | _ -> ())
    stmts;
  let env =
    {
      e_ctx = ctx;
      e_m = m;
      e_lvl = lvl;
      e_reads = ref [];
      e_refs = ref [];
      e_nrefs = ref 0;
      e_flops = ref 0;
      e_wrb = wrb;
      e_wrscal = Hashtbl.create 8;
    }
  in
  (* fpb.(l): flops the machine charges for one evaluation of level l's
     bounds (real-constant arithmetic); level l's bounds are evaluated
     once per iteration of the enclosing levels *)
  let fpb = Array.make m 0 in
  let comp_bound l e =
    let fl = ref 0 in
    let f = icomp_trunc env fl e in
    fpb.(l) <- fpb.(l) + !fl;
    f
  in
  let blos =
    Array.of_list (List.mapi (fun l d -> comp_bound l d.Ast.do_lo) levels)
  in
  let bhis =
    Array.of_list (List.mapi (fun l d -> comp_bound l d.Ast.do_hi) levels)
  in
  let bsteps =
    Array.of_list
      (List.mapi
         (fun l (d : Ast.do_loop) ->
           match d.Ast.do_step with
           | Some e -> comp_bound l e
           | None -> fun _ -> 1)
         levels)
  in
  let stmt_fns = Array.of_list (List.filter_map (comp_kstmt env) stmts) in
  if Array.length stmt_fns = 0 then raise (Unfusable Empty_body);
  let fpi = !(env.e_flops) in
  let kinfo =
    Array.of_list
      (List.rev_map (* e_refs is newest-first; rev_map restores id order *)
         (fun (slot, affs) ->
           let bounds = ctx.x_bounds.(slot) in
           let strides = strides_of bounds in
           let base = base_of bounds strides in
           let flat = Array.make m 0 in
           Array.iteri
             (fun d (a : aff) ->
               for l = 0 to m - 1 do
                 flat.(l) <- flat.(l) + (a.af_coeff.(l) * strides.(d))
               done)
             affs;
           {
             k_slot = slot;
             k_bounds = bounds;
             k_strides = strides;
             k_base = base;
             k_coeff = Array.map (fun a -> a.af_coeff) affs;
             k_resid =
               Array.map
                 (fun (a : aff) ->
                   match a.af_syms with
                   | [] ->
                       let c = a.af_const in
                       fun _ -> c
                   | syms ->
                       let c = a.af_const in
                       fun st ->
                         List.fold_left
                           (fun acc (i, mu) ->
                             acc + (mu * Array.unsafe_get st.si i))
                           c syms)
                 affs;
             k_flat = flat;
           })
         !(env.e_refs))
  in
  let nrefs = Array.length kinfo in
  let pre = Array.of_list (List.sort_uniq compare !(env.e_reads)) in
  let npre = Array.length pre in
  let ns = Array.length stmt_fns in
  fun fallback st ->
    (* any entry-read slot unset, zero step, empty trip space, or an
       unprovable subscript range: run the closure IR, which reproduces
       the machine bit for bit (including errors and partial updates) *)
    let ok = ref true in
    for i = 0 to npre - 1 do
      if not (Array.unsafe_get st.sset (Array.unsafe_get pre i)) then
        ok := false
    done;
    if not !ok then fallback st
    else begin
      let los = Array.map (fun f -> f st) blos in
      let his = Array.map (fun f -> f st) bhis in
      let steps = Array.map (fun f -> f st) bsteps in
      if Array.exists (fun s -> s = 0) steps then fallback st
      else begin
        let trips =
          Array.init m (fun l ->
              Machine.trip_count ~lo:los.(l) ~hi:his.(l) ~step:steps.(l))
        in
        if Array.exists (fun t -> t = 0) trips then fallback st
        else begin
          let ivs =
            Array.init m (fun l ->
                let last = los.(l) + ((trips.(l) - 1) * steps.(l)) in
                if steps.(l) > 0 then Iv.make los.(l) last
                else Iv.make last los.(l))
          in
          let safe = ref true in
          Array.iter
            (fun k ->
              Array.iteri
                (fun d (blo, bhi) ->
                  if !safe then begin
                    let r = k.k_resid.(d) st in
                    let iv = ref (Iv.make r r) in
                    let coeff = k.k_coeff.(d) in
                    for l = 0 to m - 1 do
                      if coeff.(l) <> 0 then
                        iv :=
                          Iv.sum !iv (Iv.affine ~mul:coeff.(l) ~add:0 ivs.(l))
                    done;
                    if Iv.lo !iv < blo || Iv.hi !iv > bhi then safe := false
                  end)
                k.k_bounds)
            kinfo;
          if not !safe then fallback st
          else begin
            let rbase =
              Array.map
                (fun k ->
                  let s = ref (-k.k_base) in
                  Array.iteri
                    (fun d f -> s := !s + (f st * k.k_strides.(d)))
                    k.k_resid;
                  !s)
                kinfo
            in
            let vals = Array.make m 0 in
            let offs = Array.make nrefs 0 in
            let kd =
              Array.map (fun k -> k.k_flat.(m - 1) * steps.(m - 1)) kinfo
            in
            let lom = los.(m - 1) in
            let stepm = steps.(m - 1) in
            let tm = trips.(m - 1) in
            let rec go l =
              if l = m - 1 then begin
                for r = 0 to nrefs - 1 do
                  let k = kinfo.(r) in
                  let o = ref (rbase.(r) + (k.k_flat.(m - 1) * lom)) in
                  for l' = 0 to m - 2 do
                    o := !o + (k.k_flat.(l') * vals.(l'))
                  done;
                  offs.(r) <- !o
                done;
                vals.(m - 1) <- lom;
                for _ = 1 to tm do
                  for s = 0 to ns - 1 do
                    (Array.unsafe_get stmt_fns s) st offs vals
                  done;
                  for r = 0 to nrefs - 1 do
                    Array.unsafe_set offs r
                      (Array.unsafe_get offs r + Array.unsafe_get kd r)
                  done;
                  vals.(m - 1) <- vals.(m - 1) + stepm
                done
              end
              else begin
                vals.(l) <- los.(l);
                for _ = 1 to trips.(l) do
                  go (l + 1);
                  vals.(l) <- vals.(l) + steps.(l)
                done
              end
            in
            go 0;
            (* batched charge: body flops per point times the trip-space
               size, plus the machine's bound-evaluation charges (level
               l's bounds are re-evaluated once per enclosing iteration) *)
            let bfl = ref 0 and evals = ref 1 in
            for l = 0 to m - 1 do
              bfl := !bfl + (fpb.(l) * !evals);
              evals := !evals * trips.(l)
            done;
            let total = !evals in
            st.flops <- st.flops +. float_of_int ((total * fpi) + !bfl);
            st.kmoved <- st.kmoved +. float_of_int (total * nrefs * 8);
            for l = 0 to m - 1 do
              var_stores.(l) st (los.(l) + (trips.(l) * steps.(l)))
            done
          end
        end
      end
    end

(* Record one coverage entry and return its index (program order, the
   final position in cu_cov); -1 when recording is off (inside fallback
   bodies), which also disables profiling instrumentation. *)
let record_cov ctx ~line ~vars ~fused ~frag reason =
  if not ctx.x_record then -1
  else begin
    let idx = List.length !(ctx.x_cov) in
    ctx.x_cov :=
      { cov_line = line; cov_vars = vars; cov_fused = fused;
        cov_reason = reason; cov_frag = frag }
      :: !(ctx.x_cov);
    idx
  end

(* Wrap a recorded nest's closure with self-profiling: calls, flop delta
   and fused-kernel byte delta, minus whatever inner profiled nests
   already claimed during this execution (recorded nests can contain
   recorded nests when a fallback body is compiled with recording on) *)
let profiled idx nest =
  if idx < 0 then nest
  else
    fun st ->
      let f0 = st.flops and b0 = st.kmoved in
      let af0 = st.kattr_flops and ab0 = st.kattr_bytes in
      nest st;
      let df = st.flops -. f0 and db = st.kmoved -. b0 in
      let self_f = df -. (st.kattr_flops -. af0) in
      let self_b = db -. (st.kattr_bytes -. ab0) in
      st.kcalls.(idx) <- st.kcalls.(idx) + 1;
      st.kflops.(idx) <- st.kflops.(idx) +. self_f;
      st.kbytes.(idx) <- st.kbytes.(idx) +. self_b;
      st.kattr_flops <- af0 +. df;
      st.kattr_bytes <- ab0 +. db

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let comp_assign_var ctx x rhs =
  match Hashtbl.find_opt ctx.x_sc x with
  | None ->
      (* every Var target is collected during slot assignment, so this is
         unreachable; fail like the machine would on execution *)
      fun _ -> error "variable '%s' has no slot (compiler bug)" x
  | Some i -> (
      match ctx.x_kinds.(i) with
      | KInt ->
          let f = as_int rhs in
          fun st ->
            st.si.(i) <- f st;
            st.sset.(i) <- true
      | KReal ->
          let f = as_float rhs in
          fun st ->
            st.sf.(i) <- f st;
            st.sset.(i) <- true
      | KBool ->
          let f = as_bool rhs in
          fun st ->
            st.sb.(i) <- f st;
            st.sset.(i) <- true
      | KDyn -> (
          match ctx.x_types.(i) with
          | Ast.Integer ->
              let f = as_int rhs in
              fun st ->
                st.sd.(i) <- Value.Int (f st);
                st.sset.(i) <- true
          | Ast.Real | Ast.Double ->
              let f = as_float rhs in
              fun st ->
                st.sd.(i) <- Value.Real (f st);
                st.sset.(i) <- true
          | Ast.Logical ->
              let f = as_bool rhs in
              fun st ->
                st.sd.(i) <- Value.Bool (f st);
                st.sset.(i) <- true))

let rec comp_block ctx (block : Ast.block) : state -> unit =
  let stmts = Array.of_list block in
  let fns = Array.map (comp_stmt ctx) stmts in
  let n = Array.length fns in
  let labels =
    List.concat
      (List.mapi
         (fun i st ->
           match st.Ast.s_label with Some l -> [ (l, i) ] | None -> [])
         block)
  in
  if labels = [] then fun st ->
    for i = 0 to n - 1 do
      fns.(i) st
    done
  else
    fun st ->
      let rec go i =
        if i < n then
          match fns.(i) st with
          | () -> go (i + 1)
          | exception Jump l -> (
              match List.assoc_opt l labels with
              | Some j -> go j
              | None -> raise (Jump l))
      in
      go 0

and comp_stmt ctx (st : Ast.stmt) : state -> unit =
  match st.Ast.s_kind with
  | Ast.Assign (Ast.Var x, rhs) -> comp_assign_var ctx x (comp ctx rhs)
  | Ast.Assign (Ast.Ref (name, args), rhs) ->
      if Hashtbl.mem ctx.x_ar name then begin
        let fr = as_float (comp ctx rhs) in
        let set = comp_ref_set ctx name args in
        fun s ->
          let v = fr s in
          set s v
      end
      else begin
        (* the machine evaluates rhs then the indices, then fails the
           array lookup *)
        let fr = as_scalar (comp ctx rhs) in
        let idxf = List.map (fun a -> as_int (comp ctx a)) args in
        fun s ->
          ignore (fr s);
          List.iter (fun f -> ignore (f s)) idxf;
          error "array '%s' is not declared" name
      end
  | Ast.Assign (_, rhs) ->
      let fr = as_scalar (comp ctx rhs) in
      fun s ->
        ignore (fr s);
        error "invalid assignment target"
  | Ast.Continue -> fun _ -> ()
  | Ast.Goto l -> fun _ -> raise (Jump l)
  | Ast.If (branches, els) -> (
      let brs =
        List.map
          (fun (c, b) -> (as_bool (comp ctx c), comp_block ctx b))
          branches
      in
      let els = Option.map (comp_block ctx) els in
      fun s ->
        let rec pick = function
          | [] -> ( match els with Some f -> f s | None -> ())
          | (c, f) :: rest -> if c s then f s else pick rest
        in
        pick brs)
  | Ast.Do d -> comp_do ctx ~line:st.Ast.s_line d
  | Ast.Call (name, _) ->
      fun _ ->
        error "CALL %s: subroutine calls must be inlined before execution"
          name
  | Ast.Return | Ast.Stop -> fun _ -> raise Machine.Stop_run
  | Ast.Read items ->
      let setters = List.map (comp_read_target ctx) items in
      let n = List.length items in
      fun s ->
        let values = s.hooks.h_read s n in
        List.iteri (fun i set -> set s values.(i)) setters
  | Ast.Write items ->
      let fs = List.map (fun e -> as_scalar (comp ctx e)) items in
      fun s -> s.hooks.h_write s (List.map (fun f -> f s) fs)
  | Ast.Comm c ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_comm s ~sid c
  | Ast.Pipeline_recv { dim; dir; arrays } ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_pipe_recv s ~sid ~dim ~dir arrays
  | Ast.Pipeline_send { dim; dir; arrays } ->
      let sid = st.Ast.s_id in
      fun s -> s.hooks.h_pipe_send s ~sid ~dim ~dir arrays

and comp_read_target ctx (item : Ast.expr) : state -> float -> unit =
  match item with
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx.x_sc x with
      | Some i -> float_store ctx i
      | None -> fun _ _ -> error "variable '%s' has no slot (compiler bug)" x)
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.x_ar name then comp_ref_set ctx name args
      else begin
        let idxf = List.map (fun a -> as_int (comp ctx a)) args in
        fun s _ ->
          List.iter (fun f -> ignore (f s)) idxf;
          error "array '%s' is not declared" name
      end
  | _ -> fun _ _ -> error "invalid assignment target"

and comp_do ctx ~line (d : Ast.do_loop) : state -> unit =
  if not ctx.x_fuse then comp_do_plain ctx d
  else
    match peel d with
    | P_descend -> comp_do_plain ctx d
    | P_bad reason ->
        if is_field_loop ctx d then begin
          let idx =
            record_cov ctx ~line ~vars:[ d.Ast.do_var ] ~fused:false
              ~frag:d.Ast.do_fission reason
          in
          profiled idx (comp_do_plain ctx d)
        end
        else comp_do_plain ctx d
    | P_leaf (levels, stmts) -> (
        let vars = List.map (fun (l : Ast.do_loop) -> l.Ast.do_var) levels in
        match kernel_of ctx levels stmts with
        | kernel ->
            let idx =
              record_cov ctx ~line ~vars ~fused:true ~frag:d.Ast.do_fission
                Fused
            in
            (* dynamic fall-back path: plain closure IR, no nested kernels *)
            profiled idx (kernel (comp_do_plain { ctx with x_fuse = false } d))
        | exception Unfusable reason ->
            let idx =
              if is_field_loop ctx d then
                record_cov ctx ~line ~vars ~fused:false
                  ~frag:d.Ast.do_fission reason
              else -1
            in
            (* inner sub-nests may still fuse (e.g. triangular bounds);
               they just don't get their own coverage entries *)
            profiled idx (comp_do_plain { ctx with x_record = false } d))

and comp_do_plain ctx (d : Ast.do_loop) : state -> unit =
  let flo = as_int (comp ctx d.Ast.do_lo) in
  let fhi = as_int (comp ctx d.Ast.do_hi) in
  let fstep =
    match d.Ast.do_step with
    | Some e -> as_int (comp ctx e)
    | None -> fun _ -> 1
  in
  let body = comp_block ctx d.Ast.do_body in
  let set_var =
    match Hashtbl.find_opt ctx.x_sc d.Ast.do_var with
    | Some i -> int_store ctx i
    | None ->
        fun _ _ ->
          error "variable '%s' has no slot (compiler bug)" d.Ast.do_var
  in
  fun st ->
    let lo = flo st in
    let hi = fhi st in
    let step = fstep st in
    if step = 0 then error "DO loop with zero step";
    let i = ref lo in
    if step > 0 then
      while !i <= hi do
        set_var st !i;
        body st;
        i := !i + step
      done
    else
      while !i >= hi do
        set_var st !i;
        body st;
        i := !i + step
      done;
    set_var st !i

(* ------------------------------------------------------------------ *)
(* Slot assignment and unit compilation                                *)
(* ------------------------------------------------------------------ *)

let collect_scalar_names (u : Ast.program_unit) ~is_array =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let add n =
    if (not (is_array n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  in
  List.iter (fun d -> if d.Ast.d_dims = [] then add d.Ast.d_name) u.Ast.u_decls;
  List.iter (fun (n, _) -> add n) u.Ast.u_consts;
  List.iter (fun (n, _) -> add n) u.Ast.u_data;
  let add_expr e =
    Ast.fold_exprs (fun () e -> match e with Ast.Var x -> add x | _ -> ()) () e
  in
  Ast.iter_stmts
    (fun st ->
      List.iter add_expr (Ast.stmt_exprs st);
      match st.Ast.s_kind with
      | Ast.Do d -> add d.Ast.do_var
      | Ast.Comm (Ast.Allreduce_max v)
      | Ast.Comm (Ast.Allreduce_min v)
      | Ast.Comm (Ast.Allreduce_sum v) ->
          add v
      | Ast.Comm (Ast.Broadcast vars) -> List.iter add vars
      | _ -> ())
    u.Ast.u_body;
  List.rev !order

let kind_of_type = function
  | Ast.Integer -> KInt
  | Ast.Real | Ast.Double -> KReal
  | Ast.Logical -> KBool

let kind_matches kind (v : Value.scalar) =
  match (kind, v) with
  | KInt, Value.Int _ | KReal, Value.Real _ | KBool, Value.Bool _ -> true
  | _ -> false

let compile ?(fuse = false) (u : Ast.program_unit) : cu =
  (* snapshot the machine's initial environment: PARAMETER constants,
     declared array bounds and DATA contents, with identical semantics
     (and identical failure modes) by construction *)
  let tm = Machine.create u in
  let ar_names = Array.of_list (Machine.array_names tm) in
  let ar_index = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace ar_index n i) ar_names;
  let ar_template = Array.map (Machine.array tm) ar_names in
  let sc_names =
    Array.of_list
      (collect_scalar_names u ~is_array:(Hashtbl.mem ar_index))
  in
  let sc_index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace sc_index n i) sc_names;
  let sc_types = Array.map (Machine.declared_type tm) sc_names in
  let init_bindings = Machine.scalar_bindings tm in
  let sc_kinds = Array.map kind_of_type sc_types in
  let sc_init = ref [] in
  Array.iteri
    (fun i n ->
      match List.assoc_opt n init_bindings with
      | None -> ()
      | Some v ->
          (* a PARAMETER whose value class disagrees with the slot's
             static type (e.g. an implicit-integer name bound to a real
             expression) falls back to a dynamically-typed slot *)
          if not (kind_matches sc_kinds.(i) v) then sc_kinds.(i) <- KDyn;
          sc_init := (i, v) :: !sc_init)
    sc_names;
  let cu =
    {
      cu_unit = u;
      sc_index;
      sc_names;
      sc_kinds;
      sc_types;
      sc_init = List.rev !sc_init;
      ar_index;
      ar_names;
      ar_template;
      cu_body = (fun _ -> assert false);
      cu_cov = [];
    }
  in
  let cov = ref [] in
  let consts = Hashtbl.create 16 in
  if fuse then begin
    let assigned = Hashtbl.create 32 in
    let mark = function
      | Ast.Var x -> Hashtbl.replace assigned x ()
      | _ -> ()
    in
    Ast.iter_stmts
      (fun st ->
        match st.Ast.s_kind with
        | Ast.Assign (lhs, _) -> mark lhs
        | Ast.Do d -> Hashtbl.replace assigned d.Ast.do_var ()
        | Ast.Read items -> List.iter mark items
        | _ -> ())
      u.Ast.u_body;
    List.iter
      (fun (n, _) ->
        if not (Hashtbl.mem assigned n) then
          match List.assoc_opt n init_bindings with
          | Some v -> Hashtbl.replace consts n v
          | None -> ())
      u.Ast.u_consts
  end;
  let ctx =
    {
      x_sc = sc_index;
      x_kinds = sc_kinds;
      x_types = sc_types;
      x_ar = ar_index;
      x_bounds = Array.map (fun a -> a.Value.bounds) ar_template;
      x_fuse = fuse;
      x_record = fuse;
      x_cov = cov;
      x_consts = consts;
    }
  in
  cu.cu_body <- comp_block ctx u.Ast.u_body;
  cu.cu_cov <- List.rev !cov;
  cu

(* compiled units are pure functions of the AST (and the fuse flag):
   memoize per physical unit so every rank of a run — and every run over
   the same program — shares one compilation *)
let memo : (Ast.program_unit * bool * cu) list ref = ref []
let memo_limit = 16
let memo_lock = Mutex.create ()

let of_unit ?(fuse = false) u =
  let hit =
    Mutex.protect memo_lock (fun () ->
        List.find_opt (fun (u', f, _) -> u' == u && f = fuse) !memo)
  in
  match hit with
  | Some (_, _, cu) -> cu
  | None ->
      (* compile outside the lock: worker domains of a sweep never share
         physical units, so serializing their compilations would only
         cost parallelism, not save work *)
      let cu = compile ~fuse u in
      Mutex.protect memo_lock (fun () ->
          let keep = List.filteri (fun i _ -> i < memo_limit - 1) !memo in
          memo := (u, fuse, cu) :: keep);
      cu

let coverage cu = cu.cu_cov

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

let create ?(hooks = sequential_hooks) ?(input = []) cu =
  let n = Array.length cu.sc_names in
  let arrs = Array.map Value.copy cu.ar_template in
  let ncov = List.length cu.cu_cov in
  let st =
    {
      cu;
      sf = Array.make n 0.0;
      si = Array.make n 0;
      sb = Array.make n false;
      sd = Array.make n (Value.Int 0);
      sset = Array.make n false;
      arrs;
      adata = Array.map (fun a -> a.Value.data) arrs;
      flops = 0.0;
      input;
      out_rev = [];
      hooks;
      kcalls = Array.make ncov 0;
      kflops = Array.make ncov 0.0;
      kbytes = Array.make ncov 0.0;
      kmoved = 0.0;
      kattr_flops = 0.0;
      kattr_bytes = 0.0;
    }
  in
  List.iter
    (fun (i, v) ->
      (match cu.sc_kinds.(i) with
      | KInt -> st.si.(i) <- Value.to_int v
      | KReal -> st.sf.(i) <- Value.to_float v
      | KBool -> st.sb.(i) <- Value.to_bool v
      | KDyn -> st.sd.(i) <- v);
      st.sset.(i) <- true)
    cu.sc_init;
  st

let run st =
  try st.cu.cu_body st with
  | Machine.Stop_run -> ()
  | Jump l -> error "jump to unknown label %d" l

let unit_of st = st.cu.cu_unit
let flops st = st.flops
let reset_flops st = st.flops <- 0.0
let output st = List.rev st.out_rev

type kernel_stat = {
  ks_line : int;
  ks_vars : string list;
  ks_fused : bool;
  ks_reason : reason;
  ks_frag : Ast.fission_tag option;
  ks_calls : int;
  ks_flops : float;
  ks_bytes : float;
}

let kernel_stats st =
  List.mapi
    (fun i (c : coverage_entry) ->
      {
        ks_line = c.cov_line;
        ks_vars = c.cov_vars;
        ks_fused = c.cov_fused;
        ks_reason = c.cov_reason;
        ks_frag = c.cov_frag;
        ks_calls = st.kcalls.(i);
        ks_flops = st.kflops.(i);
        ks_bytes = st.kbytes.(i);
      })
    st.cu.cu_cov

let scalar_opt st name =
  match Hashtbl.find_opt st.cu.sc_index name with
  | None -> None
  | Some i ->
      if not st.sset.(i) then None
      else
        Some
          (match st.cu.sc_kinds.(i) with
          | KInt -> Value.Int st.si.(i)
          | KReal -> Value.Real st.sf.(i)
          | KBool -> Value.Bool st.sb.(i)
          | KDyn -> st.sd.(i))

let scalar st name =
  match scalar_opt st name with
  | Some v -> v
  | None -> error "variable '%s' used before being set" name

let set_scalar st name (v : Value.scalar) =
  match Hashtbl.find_opt st.cu.sc_index name with
  | None -> error "variable '%s' has no slot in the compiled unit" name
  | Some i -> (
      st.sset.(i) <- true;
      match st.cu.sc_kinds.(i) with
      | KInt -> st.si.(i) <- Value.to_int v
      | KReal -> st.sf.(i) <- Value.to_float v
      | KBool -> st.sb.(i) <- Value.to_bool v
      | KDyn -> (
          match st.cu.sc_types.(i) with
          | Ast.Integer -> st.sd.(i) <- Value.Int (Value.to_int v)
          | Ast.Real | Ast.Double -> st.sd.(i) <- Value.Real (Value.to_float v)
          | Ast.Logical -> st.sd.(i) <- Value.Bool (Value.to_bool v)))

let array st name =
  match Hashtbl.find_opt st.cu.ar_index name with
  | Some i -> st.arrs.(i)
  | None -> error "array '%s' is not declared" name

let has_array st name = Hashtbl.mem st.cu.ar_index name
let array_names st = Array.to_list st.cu.ar_names

let scalar_bindings st =
  Array.to_list st.cu.sc_names
  |> List.filter_map (fun n ->
         match scalar_opt st n with Some v -> Some (n, v) | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
