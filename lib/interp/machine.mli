(** Tree-walking interpreter for the Fortran subset.

    The machine executes one (inlined) program unit: a flat environment of
    scalars and arrays, statement execution with GOTO support, and
    pluggable hooks for the SPMD constructs (communication statements,
    local-bound expressions) so the same evaluator runs both the sequential
    program and each simulated rank of the generated parallel program. *)

open Autocfd_fortran

type t

exception Stop_run
exception Runtime_error of string

type hooks = {
  h_block : (int -> int * int) option;
      (** per grid dimension: the rank's (lo, hi) owned range; [None] on
          the sequential machine (Local_lo/Local_hi become identities) *)
  h_comm : t -> sid:int -> Ast.comm -> unit;
      (** [sid] is the communication statement's [Ast.s_id]; the SPMD
          executor uses it to attribute the operation to its combined
          synchronization point for tracing *)
  h_pipe_recv :
    t -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list -> unit;
  h_pipe_send :
    t -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list -> unit;
  h_read : t -> int -> float array;
      (** supply [n] input values (rank 0 reads, then broadcasts) *)
  h_write : t -> Value.scalar list -> unit;
}

val sequential_hooks : hooks
(** Reads pop the machine's input queue; writes append to the output list;
    communication statements raise {!Runtime_error}. *)

val create : ?hooks:hooks -> ?input:float list -> Ast.program_unit -> t
(** Evaluates PARAMETER constants, allocates declared arrays, applies DATA
    statements.  @raise Runtime_error when an array bound is not constant. *)

val unit_of : t -> Ast.program_unit
val run : t -> unit
(** Executes the unit body.  [Stop_run] (from STOP) is caught internally.
    @raise Runtime_error on dynamic errors (with context). *)

val flops : t -> float
(** Floating-point operations executed so far (used by the execution-driven
    time model). *)

val reset_flops : t -> unit

(** Environment access (tests, drivers, hooks): *)

val scalar : t -> string -> Value.scalar
val set_scalar : t -> string -> Value.scalar -> unit
val array : t -> string -> Value.arr
val has_array : t -> string -> bool

val array_names : t -> string list
(** Sorted; memoized after the first call (declarations are fixed once the
    unit starts). *)

val scalar_bindings : t -> (string * Value.scalar) list
(** Every currently-set scalar, sorted by name.  Right after {!create}
    this is exactly the PARAMETER constants plus scalar DATA values — the
    initial environment {!Compile} snapshots. *)

val declared_type : t -> string -> Ast.dtype
(** The type assignments to [name] convert to: the declared type, or the
    Fortran implicit rule (I-N integer, otherwise real). *)

val output : t -> string list
(** Lines written so far, oldest first. *)

val eval : t -> Ast.expr -> Value.scalar
(** Evaluate an expression in the current environment. *)

val exec_block : t -> Ast.block -> unit

val trip_count : lo:int -> hi:int -> step:int -> int
(** Number of iterations of [DO var = lo, hi, step]: the body runs exactly
    this many times and the variable's exit value is [lo + trips*step].
    Shared by the tree-walking DO loop and the fused-kernel tier (which
    charges [trips * flops-per-iteration] in one batched update).
    @raise Invalid_argument on [step = 0]. *)
