(** Compile-once execution engine for the Fortran subset.

    {!compile} lowers a program unit into a closure-based IR exactly once:
    every scalar name is resolved to an integer slot in a typed bank
    (separate unboxed [float]/[int]/[bool] banks, so the hot real-arithmetic
    path never boxes), every array reference is lowered to a fused
    row-major-offset computation over strides precomputed from the declared
    bounds, and int/real arithmetic is specialized at compile time (the
    machine's dynamic [Value.scalar] dispatch survives only for the rare
    statically-untypeable expression).

    Semantics — results, WRITE output, flop charges, runtime-error messages,
    GOTO/label behavior — are bit-identical to {!Machine} running the same
    unit; the golden-equivalence test suite ([test/test_engine.ml]) enforces
    this on every application program.  Dynamic errors raise
    {!Machine.Runtime_error} so callers need not distinguish engines. *)

open Autocfd_fortran

type cu
(** A compiled program unit: immutable, shareable across any number of
    execution states (e.g. all ranks of an SPMD run). *)

type state
(** One execution of a compiled unit: slot banks, array storage, flop
    counter, I/O queues, hooks. *)

type hooks = {
  h_block : (int -> int * int) option;
      (** per grid dimension: the rank's (lo, hi) owned range; [None] on
          the sequential engine (Local_lo/Local_hi become identities) *)
  h_comm : state -> sid:int -> Ast.comm -> unit;
  h_pipe_recv :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_pipe_send :
    state -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  h_read : state -> int -> float array;
  h_write : state -> Value.scalar list -> unit;
}

val sequential_hooks : hooks
(** Same behavior as {!Machine.sequential_hooks}. *)

(** Why a field-loop nest did or did not compile to a fused kernel — a
    closed variant so tests and reports can match on constructors.
    [Other] appears only when {!reason_of_string} meets prose this build
    does not produce. *)
type reason =
  | Fused
  | Scalar_subscript
  | Non_affine_subscript
  | Bound_loop_var
  | Bound_written_scalar
  | Bound_not_integer
  | Rank_mismatch
  | Non_arith_value
  | Non_arith_scalar
  | Logical_in_body
  | Int_division
  | Int_mod
  | Dynamic_exponent
  | Local_bound_in_body
  | Intrinsic_arity of string
  | Unknown_intrinsic of string
  | Undeclared_array
  | Assign_to_loop_var
  | Scalar_assign
  | Bad_assign_target
  | Non_assign_stmt
  | Duplicate_loop_var
  | Loop_var_not_int
  | Loop_var_no_slot
  | Empty_body
  | If_in_body
  | Goto_in_body
  | Io_in_body
  | Comm_in_body
  | Control_in_body
  | Other of string

val reason_to_string : reason -> string
(** Stable human-readable prose (["fused"], ["IF in loop body"], ...);
    exactly what older builds stored as raw strings, so serialized
    coverage rows are unchanged. *)

val reason_of_string : string -> reason
(** Inverse of {!reason_to_string}; unknown prose maps to [Other]. *)

type coverage_entry = {
  cov_line : int;  (** source line of the nest's outermost DO *)
  cov_vars : string list;  (** loop variables, outermost first *)
  cov_fused : bool;
  cov_reason : reason;  (** [Fused], or why the nest fell back *)
  cov_frag : Ast.fission_tag option;
      (** provenance when the nest is a loop-fission fragment: its index
          and the total fragment count of the source nest (which shares
          [cov_line]) *)
}
(** Static fusibility of one field-loop nest (a DO nest that writes at
    least one declared array element), recorded when compiling with
    [~fuse:true]. *)

val compile : ?fuse:bool -> Ast.program_unit -> cu
(** Lower the unit.  Evaluates PARAMETER constants, array bounds and DATA
    statements through a template {!Machine} so initialization is
    bit-identical; raises {!Machine.Runtime_error} on the same inputs
    {!Machine.create} would.

    With [~fuse:true] (default [false]) the compiler additionally emits a
    fused kernel for every DO nest whose body is a straight-line sequence
    of assignments to declared array elements over affine subscripts:
    bounds are evaluated once at entry, every subscript is proven in-range
    for the whole trip space with interval arithmetic, elements are
    accessed unchecked through per-reference offset deltas, and the nest's
    flops are charged as one batched [trips * flops-per-iteration] update.
    Results, flop totals and error behavior stay bit-identical to the
    closure IR (and hence to {!Machine}); nests the analyzer or the
    runtime prover cannot discharge fall back to the closure IR. *)

val of_unit : ?fuse:bool -> Ast.program_unit -> cu
(** Memoized {!compile}: the same physical [program_unit] (and fuse flag)
    compiles once and the result is shared (all ranks of a run, repeated
    runs in benchmarks and tables). *)

val coverage : cu -> coverage_entry list
(** Field-loop nests in program order.  Empty unless the unit was
    compiled with [~fuse:true]. *)

type kernel_stat = {
  ks_line : int;  (** source line of the nest's outermost DO *)
  ks_vars : string list;  (** loop variables, outermost first *)
  ks_fused : bool;
  ks_reason : reason;  (** [Fused], or why the nest fell back *)
  ks_frag : Ast.fission_tag option;  (** loop-fission provenance *)
  ks_calls : int;  (** nest executions on this state *)
  ks_flops : float;  (** self flops (inner profiled nests excluded) *)
  ks_bytes : float;  (** bytes moved by the fused kernel (0 on fallback) *)
}
(** Per-nest execution profile of one state, one entry per {!coverage}
    entry (same order).  Maintained whenever the unit was compiled with
    [~fuse:true]; flop attribution is exact — every flop the state
    charges inside a recorded nest lands in exactly one entry. *)

val kernel_stats : state -> kernel_stat list

val create : ?hooks:hooks -> ?input:float list -> cu -> state
(** Fresh state: arrays copied from the compiled template (bounds + DATA),
    PARAMETER and scalar-DATA slots pre-set. *)

val run : state -> unit
(** Execute the unit body.  [Machine.Stop_run] is caught internally.
    @raise Machine.Runtime_error on dynamic errors. *)

(** Environment access, mirroring the {!Machine} accessors: *)

val unit_of : state -> Ast.program_unit
val flops : state -> float
val reset_flops : state -> unit
val output : state -> string list
val scalar : state -> string -> Value.scalar
val scalar_opt : state -> string -> Value.scalar option
val set_scalar : state -> string -> Value.scalar -> unit
val array : state -> string -> Value.arr
val has_array : state -> string -> bool

val array_names : state -> string list
(** Sorted, same order as {!Machine.array_names}. *)

val scalar_bindings : state -> (string * Value.scalar) list
(** Every currently-set scalar, sorted by name — same contract as
    {!Machine.scalar_bindings}; used by the recovery layer to snapshot
    and restore the scalar banks. *)
