type kind =
  | Compute
  | Send of { dest : int; tag : int; bytes : int }
  | Recv of { src : int; tag : int; bytes : int }
  | Blocked of { src : int; tag : int }
  | Collective of { op : string; bytes : int }
  | Phase of { label : string; loop : string option; iter : int option }
  | Fault of { what : string; peer : int }
  | Retransmit of { dest : int; tag : int; seq : int }
  | Checkpoint of { save : bool; bytes : int }
  | Sched of { what : string; job : string }
  | Kernel of {
      name : string;
      line : int;
      fused : bool;
      frag : int;
      nfrags : int;
      calls : int;
      flops : float;
      bytes : float;
    }

type event = {
  ev_rank : int;
  ev_t0 : float;
  ev_t1 : float;
  ev_sync : int;
  ev_wall : bool;
  ev_kind : kind;
}

type t = {
  mutable nranks : int;
  mutable ctx : int array;  (* per-rank current sync-point id, -1 = none *)
  mutable rev_events : event list;
  mutable count : int;
}

let create () = { nranks = 0; ctx = [||]; rev_events = []; count = 0 }

let prepare t ~nranks =
  t.nranks <- max t.nranks nranks;
  if Array.length t.ctx < nranks then begin
    let ctx = Array.make nranks (-1) in
    Array.blit t.ctx 0 ctx 0 (Array.length t.ctx);
    t.ctx <- ctx
  end

let current_sync t rank =
  if rank >= 0 && rank < Array.length t.ctx then t.ctx.(rank) else -1

let set_sync t ~rank ~sync =
  if rank >= 0 && rank < Array.length t.ctx then t.ctx.(rank) <- sync

let clear_sync t ~rank = set_sync t ~rank ~sync:(-1)

let push t ev =
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let record t ?(wall = false) ~rank ~t0 ~t1 kind =
  push t
    { ev_rank = rank; ev_t0 = t0; ev_t1 = t1;
      ev_sync = current_sync t rank; ev_wall = wall; ev_kind = kind }

let phase t ?(wall = false) ~rank ~t0 ~t1 ~sync ~label ?loop ?iter () =
  push t
    { ev_rank = rank; ev_t0 = t0; ev_t1 = t1; ev_sync = sync;
      ev_wall = wall; ev_kind = Phase { label; loop; iter } }

let events t = List.rev t.rev_events
let nranks t = t.nranks
let length t = t.count
