(** Unified metrics registry: named counters, gauges and log-bucketed
    histograms with Prometheus-text and JSON exporters.

    A metric is identified by its name plus a (sorted) label set; the
    first use of a name fixes its kind (and, for histograms, its bucket
    bounds).  Exports are deterministic: families sorted by name, series
    by label set — independent of insertion order.

    The registry itself is a passive container; {!observe_trace} feeds it
    from a {!Trace} (interp kernel summaries, mpsim message sizes and
    sync-point latencies, fault/retransmit/checkpoint counters, sweep
    scheduler events), and callers with richer sources (e.g. the sweep
    pool's stats record) add their own series on top. *)

type t

val create : unit -> t

val inc : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** Add to a counter (creating it at 0).
    @raise Invalid_argument if [name] exists with a different kind. *)

val set : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge. *)

val observe :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  float ->
  unit
(** Record one observation in a histogram.  [buckets] (ascending upper
    bounds, "le" semantics: an observation lands in the first bucket
    whose bound is [>=] the value; above every bound it lands in the
    implicit [+Inf] slot) applies on first creation only; defaults to
    {!seconds_buckets}. *)

val log_buckets : lo:float -> hi:float -> float array
(** Powers-of-two bounds [lo, 2lo, 4lo, ...] up to and including the
    first bound [>= hi].
    @raise Invalid_argument unless [0 < lo < hi]. *)

val seconds_buckets : float array
(** [log_buckets ~lo:1e-6 ~hi:16.0] — 1 µs to ~16 s. *)

val bytes_buckets : float array
(** [log_buckets ~lo:64.0 ~hi:16777216.0] — 64 B to 16 MiB. *)

val value : t -> ?labels:(string * string) list -> string -> float option
(** Current value of a counter or gauge series, if it exists. *)

val hist_counts :
  t ->
  ?labels:(string * string) list ->
  string ->
  (float array * int array * float * int) option
(** [(bounds, per-bucket counts, sum, count)] of a histogram series; the
    counts array has one extra trailing slot for the [+Inf] overflow. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers, one
    sample line per series, histograms expanded into cumulative
    [_bucket{le="..."}] samples plus [_sum] and [_count]. *)

val to_json : t -> Json.t
(** Schema ["autocfd-registry/1"]: metric families with kind, help and
    series (histogram series carry per-bucket — non-cumulative — counts,
    with a [le = null] overflow slot). *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

exception Parse_error of string

val parse_prometheus : string -> sample list
(** Parse text exposition format back into samples (comments and blank
    lines skipped; histogram [_bucket]/[_sum]/[_count] samples appear
    under those suffixed names).  Used by the round-trip tests and by
    tooling that scrapes [profile --prom] output.
    @raise Parse_error on malformed input. *)

val observe_trace : t -> Trace.t -> unit
(** Fold every trace event into the registry: compute/blocked seconds,
    per-kind message counters and size histograms, per-sync-point latency
    histograms, fault/retransmit/checkpoint counters, sweep-scheduler job
    counters and per-worker busy seconds, and per-nest kernel counters
    from {!Trace.Kernel} summaries. *)
