type rank_row = {
  rr_rank : int;
  rr_compute : float;
  rr_comm : float;
  rr_blocked : float;
  rr_finish : float;
}

type sync_row = {
  sr_id : int;
  sr_label : string;
  sr_loop : string option;
  sr_executions : int;
  sr_messages : int;
  sr_bytes : int;
  sr_comm_time : float;
  sr_blocked_time : float;
  sr_phase_time : float;
}

type t = {
  ranks : rank_row array;
  syncs : sync_row list;
  elapsed : float;
  messages : int;
  bytes : int;
  faults : int;
  retransmits : int;
  checkpoints : int;
  restores : int;
}

type sync_acc = {
  mutable a_label : string;
  mutable a_loop : string option;
  mutable a_executions : int;
  mutable a_messages : int;
  mutable a_bytes : int;
  mutable a_comm : float;
  mutable a_blocked : float;
  mutable a_phase : float;
}

let of_trace tr =
  let n = Trace.nranks tr in
  let compute = Array.make n 0.0
  and comm = Array.make n 0.0
  and blocked = Array.make n 0.0
  and finish = Array.make n 0.0 in
  let messages = ref 0 and bytes = ref 0 in
  let faults = ref 0 and retransmits = ref 0 in
  let checkpoints = ref 0 and restores = ref 0 in
  let syncs : (int, sync_acc) Hashtbl.t = Hashtbl.create 16 in
  let acc id =
    match Hashtbl.find_opt syncs id with
    | Some a -> a
    | None ->
        let a =
          { a_label = ""; a_loop = None; a_executions = 0; a_messages = 0;
            a_bytes = 0; a_comm = 0.0; a_blocked = 0.0; a_phase = 0.0 }
        in
        Hashtbl.replace syncs id a;
        a
  in
  List.iter
    (fun (e : Trace.event) ->
      let r = e.Trace.ev_rank in
      let dur = e.Trace.ev_t1 -. e.Trace.ev_t0 in
      if r >= 0 && r < n then finish.(r) <- Float.max finish.(r) e.Trace.ev_t1;
      let tagged = e.Trace.ev_sync >= 0 in
      match e.Trace.ev_kind with
      | Trace.Compute -> if r >= 0 && r < n then compute.(r) <- compute.(r) +. dur
      | Trace.Send { bytes = b; _ } ->
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur;
          incr messages;
          bytes := !bytes + b;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_messages <- a.a_messages + 1;
            a.a_bytes <- a.a_bytes + b;
            a.a_comm <- a.a_comm +. dur
          end
      | Trace.Recv _ | Trace.Collective _ ->
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_comm <- a.a_comm +. dur
          end
      | Trace.Blocked _ ->
          if r >= 0 && r < n then blocked.(r) <- blocked.(r) +. dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_blocked <- a.a_blocked +. dur
          end
      | Trace.Phase { label; loop; _ } ->
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_label <- label;
            (match loop with Some _ -> a.a_loop <- loop | None -> ());
            a.a_executions <- a.a_executions + 1;
            a.a_phase <- a.a_phase +. dur
          end
      | Trace.Fault _ ->
          (* stall faults carry their pause as duration: idle time *)
          incr faults;
          if r >= 0 && r < n then blocked.(r) <- blocked.(r) +. dur
      | Trace.Retransmit _ -> incr retransmits
      | Trace.Checkpoint { save; _ } ->
          (* snapshot/restore cost is charged like communication (the
             coordinated state movement of the recovery layer) *)
          if save then incr checkpoints else incr restores;
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur
      | Trace.Sched _ ->
          (* sweep-scheduler events live on wall-clock, not the virtual
             clock; they carry no simulator time to attribute *)
          ())
    (Trace.events tr);
  let ranks =
    Array.init n (fun r ->
        { rr_rank = r; rr_compute = compute.(r); rr_comm = comm.(r);
          rr_blocked = blocked.(r); rr_finish = finish.(r) })
  in
  let syncs =
    Hashtbl.fold
      (fun id (a : sync_acc) rows ->
        { sr_id = id; sr_label = a.a_label; sr_loop = a.a_loop;
          sr_executions = a.a_executions; sr_messages = a.a_messages;
          sr_bytes = a.a_bytes; sr_comm_time = a.a_comm;
          sr_blocked_time = a.a_blocked; sr_phase_time = a.a_phase }
        :: rows)
      syncs []
    |> List.sort (fun a b -> compare a.sr_id b.sr_id)
  in
  {
    ranks;
    syncs;
    elapsed = Array.fold_left Float.max 0.0 finish;
    messages = !messages;
    bytes = !bytes;
    faults = !faults;
    retransmits = !retransmits;
    checkpoints = !checkpoints;
    restores = !restores;
  }

let to_json m =
  let rank_json (r : rank_row) =
    Json.Obj
      [
        ("rank", Json.Int r.rr_rank);
        ("compute", Json.Float r.rr_compute);
        ("comm", Json.Float r.rr_comm);
        ("blocked", Json.Float r.rr_blocked);
        ("finish", Json.Float r.rr_finish);
      ]
  in
  let sync_json (s : sync_row) =
    Json.Obj
      [
        ("id", Json.Int s.sr_id);
        ("label", Json.Str s.sr_label);
        ("loop",
         match s.sr_loop with Some v -> Json.Str v | None -> Json.Null);
        ("executions", Json.Int s.sr_executions);
        ("messages", Json.Int s.sr_messages);
        ("bytes", Json.Int s.sr_bytes);
        ("comm_time", Json.Float s.sr_comm_time);
        ("blocked_time", Json.Float s.sr_blocked_time);
        ("phase_time", Json.Float s.sr_phase_time);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "autocfd-metrics/1");
      ("elapsed", Json.Float m.elapsed);
      ("messages", Json.Int m.messages);
      ("bytes", Json.Int m.bytes);
      ("faults", Json.Int m.faults);
      ("retransmits", Json.Int m.retransmits);
      ("checkpoints", Json.Int m.checkpoints);
      ("restores", Json.Int m.restores);
      ("ranks", Json.List (List.map rank_json (Array.to_list m.ranks)));
      ("sync_points", Json.List (List.map sync_json m.syncs));
    ]
