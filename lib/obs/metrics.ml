type rank_row = {
  rr_rank : int;
  rr_compute : float;
  rr_comm : float;
  rr_blocked : float;
  rr_finish : float;
}

type sync_row = {
  sr_id : int;
  sr_label : string;
  sr_loop : string option;
  sr_executions : int;
  sr_messages : int;
  sr_bytes : int;
  sr_comm_time : float;
  sr_blocked_time : float;
  sr_phase_time : float;
}

type kind_row = {
  kb_kind : string;
  kb_events : int;
  kb_bytes : int;
  kb_time : float;
}

type kernel_row = {
  kr_name : string;
  kr_line : int;
  kr_fused : bool;
  kr_frag : int;
  kr_nfrags : int;
  kr_calls : int;
  kr_flops : float;
  kr_bytes : float;
  kr_self : float;
}

type sched_worker = { sw_worker : int; sw_jobs : int; sw_busy : float }

type sched_stats = {
  sc_jobs : int;
  sc_run : int;
  sc_hits : int;
  sc_errors : int;
  sc_elapsed : float;
  sc_workers : sched_worker list;
}

type t = {
  ranks : rank_row array;
  syncs : sync_row list;
  elapsed : float;
  messages : int;
  bytes : int;
  by_kind : kind_row list;
  kernels : kernel_row list;
  sched : sched_stats option;
  faults : int;
  retransmits : int;
  checkpoints : int;
  restores : int;
}

type sync_acc = {
  mutable a_label : string;
  mutable a_loop : string option;
  mutable a_executions : int;
  mutable a_messages : int;
  mutable a_bytes : int;
  mutable a_comm : float;
  mutable a_blocked : float;
  mutable a_phase : float;
}

type kind_acc = {
  mutable ka_events : int;
  mutable ka_bytes : int;
  mutable ka_time : float;
}

type kernel_acc = {
  mutable na_fused : bool;
  mutable na_frag : int;
  mutable na_nfrags : int;
  mutable na_calls : int;
  mutable na_flops : float;
  mutable na_bytes : float;
  mutable na_self : float;
}

type sched_acc = {
  mutable wa_jobs : int;
  mutable wa_busy : float;
}

let of_trace tr =
  let n = Trace.nranks tr in
  let compute = Array.make n 0.0
  and comm = Array.make n 0.0
  and blocked = Array.make n 0.0
  and finish = Array.make n 0.0 in
  let messages = ref 0 and bytes = ref 0 in
  let faults = ref 0 and retransmits = ref 0 in
  let checkpoints = ref 0 and restores = ref 0 in
  let syncs : (int, sync_acc) Hashtbl.t = Hashtbl.create 16 in
  let kinds : (string, kind_acc) Hashtbl.t = Hashtbl.create 8 in
  let kind_order = ref [] in
  let kernels : (int * string, kernel_acc) Hashtbl.t = Hashtbl.create 16 in
  let sched_workers : (int, sched_acc) Hashtbl.t = Hashtbl.create 8 in
  let sched_run = ref 0 and sched_hits = ref 0 and sched_errors = ref 0 in
  let sched_seen = ref false and sched_elapsed = ref 0.0 in
  let acc id =
    match Hashtbl.find_opt syncs id with
    | Some a -> a
    | None ->
        let a =
          { a_label = ""; a_loop = None; a_executions = 0; a_messages = 0;
            a_bytes = 0; a_comm = 0.0; a_blocked = 0.0; a_phase = 0.0 }
        in
        Hashtbl.replace syncs id a;
        a
  in
  let kacc kind =
    match Hashtbl.find_opt kinds kind with
    | Some a -> a
    | None ->
        let a = { ka_events = 0; ka_bytes = 0; ka_time = 0.0 } in
        Hashtbl.replace kinds kind a;
        kind_order := kind :: !kind_order;
        a
  in
  let by_kind ~kind ~b dur =
    let a = kacc kind in
    a.ka_events <- a.ka_events + 1;
    a.ka_bytes <- a.ka_bytes + b;
    a.ka_time <- a.ka_time +. dur
  in
  List.iter
    (fun (e : Trace.event) ->
      let r = e.Trace.ev_rank in
      let dur = e.Trace.ev_t1 -. e.Trace.ev_t0 in
      (* kernel and sched events are summaries / wall-clock lanes: they do
         not extend a rank's virtual finish time *)
      (match e.Trace.ev_kind with
      | Trace.Kernel _ | Trace.Sched _ -> ()
      | _ ->
          if r >= 0 && r < n then
            finish.(r) <- Float.max finish.(r) e.Trace.ev_t1);
      let tagged = e.Trace.ev_sync >= 0 in
      match e.Trace.ev_kind with
      | Trace.Compute -> if r >= 0 && r < n then compute.(r) <- compute.(r) +. dur
      | Trace.Send { bytes = b; _ } ->
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur;
          incr messages;
          bytes := !bytes + b;
          by_kind ~kind:"send" ~b dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_messages <- a.a_messages + 1;
            a.a_bytes <- a.a_bytes + b;
            a.a_comm <- a.a_comm +. dur
          end
      | Trace.Recv { bytes = b; _ } ->
          (* wire bytes are counted at origination (send / collective);
             recv rows appear only in the per-kind breakdown *)
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur;
          by_kind ~kind:"recv" ~b dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_comm <- a.a_comm +. dur
          end
      | Trace.Collective { bytes = b; _ } ->
          (* one participation per rank: each counts as a message and
             carries the collective's payload *)
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur;
          incr messages;
          bytes := !bytes + b;
          by_kind ~kind:"collective" ~b dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_messages <- a.a_messages + 1;
            a.a_bytes <- a.a_bytes + b;
            a.a_comm <- a.a_comm +. dur
          end
      | Trace.Blocked _ ->
          if r >= 0 && r < n then blocked.(r) <- blocked.(r) +. dur;
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_blocked <- a.a_blocked +. dur
          end
      | Trace.Phase { label; loop; _ } ->
          if tagged then begin
            let a = acc e.Trace.ev_sync in
            a.a_label <- label;
            (match loop with Some _ -> a.a_loop <- loop | None -> ());
            a.a_executions <- a.a_executions + 1;
            a.a_phase <- a.a_phase +. dur
          end
      | Trace.Fault _ ->
          (* stall faults carry their pause as duration: idle time *)
          incr faults;
          if r >= 0 && r < n then blocked.(r) <- blocked.(r) +. dur
      | Trace.Retransmit _ -> incr retransmits
      | Trace.Checkpoint { save; _ } ->
          (* snapshot/restore cost is charged like communication (the
             coordinated state movement of the recovery layer) *)
          if save then incr checkpoints else incr restores;
          if r >= 0 && r < n then comm.(r) <- comm.(r) +. dur
      | Trace.Sched { what; _ } ->
          (* sweep-scheduler events live on wall-clock, not the virtual
             clock: they get their own section instead of polluting the
             per-rank virtual-time accounting *)
          sched_seen := true;
          sched_elapsed := Float.max !sched_elapsed e.Trace.ev_t1;
          (match what with
          | "hit" -> incr sched_hits
          | "error" -> incr sched_errors
          | _ -> incr sched_run);
          let a =
            match Hashtbl.find_opt sched_workers r with
            | Some a -> a
            | None ->
                let a = { wa_jobs = 0; wa_busy = 0.0 } in
                Hashtbl.replace sched_workers r a;
                a
          in
          a.wa_jobs <- a.wa_jobs + 1;
          a.wa_busy <- a.wa_busy +. dur
      | Trace.Kernel { name; line; fused; frag; nfrags; calls; flops;
                       bytes = kb } ->
          let key = (line, name) in
          let a =
            match Hashtbl.find_opt kernels key with
            | Some a -> a
            | None ->
                let a =
                  { na_fused = fused; na_frag = frag; na_nfrags = nfrags;
                    na_calls = 0; na_flops = 0.0;
                    na_bytes = 0.0; na_self = 0.0 }
                in
                Hashtbl.replace kernels key a;
                a
          in
          a.na_fused <- a.na_fused && fused;
          a.na_calls <- a.na_calls + calls;
          a.na_flops <- a.na_flops +. flops;
          a.na_bytes <- a.na_bytes +. kb;
          a.na_self <- a.na_self +. dur)
    (Trace.events tr);
  let ranks =
    Array.init n (fun r ->
        { rr_rank = r; rr_compute = compute.(r); rr_comm = comm.(r);
          rr_blocked = blocked.(r); rr_finish = finish.(r) })
  in
  let syncs =
    Hashtbl.fold
      (fun id (a : sync_acc) rows ->
        { sr_id = id; sr_label = a.a_label; sr_loop = a.a_loop;
          sr_executions = a.a_executions; sr_messages = a.a_messages;
          sr_bytes = a.a_bytes; sr_comm_time = a.a_comm;
          sr_blocked_time = a.a_blocked; sr_phase_time = a.a_phase }
        :: rows)
      syncs []
    |> List.sort (fun a b -> compare a.sr_id b.sr_id)
  in
  let by_kind =
    List.rev_map
      (fun kind ->
        let a = Hashtbl.find kinds kind in
        { kb_kind = kind; kb_events = a.ka_events; kb_bytes = a.ka_bytes;
          kb_time = a.ka_time })
      !kind_order
  in
  let kernel_rows =
    Hashtbl.fold
      (fun (line, name) (a : kernel_acc) rows ->
        { kr_name = name; kr_line = line; kr_fused = a.na_fused;
          kr_frag = a.na_frag; kr_nfrags = a.na_nfrags;
          kr_calls = a.na_calls; kr_flops = a.na_flops;
          kr_bytes = a.na_bytes; kr_self = a.na_self }
        :: rows)
      kernels []
    |> List.sort (fun a b ->
           match compare b.kr_self a.kr_self with
           | 0 -> (
               match compare b.kr_flops a.kr_flops with
               | 0 -> compare a.kr_line b.kr_line
               | c -> c)
           | c -> c)
  in
  let sched =
    if not !sched_seen then None
    else
      let workers =
        Hashtbl.fold
          (fun w (a : sched_acc) rows ->
            { sw_worker = w; sw_jobs = a.wa_jobs; sw_busy = a.wa_busy }
            :: rows)
          sched_workers []
        |> List.sort (fun a b -> compare a.sw_worker b.sw_worker)
      in
      Some
        {
          sc_jobs = !sched_run + !sched_hits + !sched_errors;
          sc_run = !sched_run;
          sc_hits = !sched_hits;
          sc_errors = !sched_errors;
          sc_elapsed = !sched_elapsed;
          sc_workers = workers;
        }
  in
  {
    ranks;
    syncs;
    elapsed = Array.fold_left Float.max 0.0 finish;
    messages = !messages;
    bytes = !bytes;
    by_kind;
    kernels = kernel_rows;
    sched;
    faults = !faults;
    retransmits = !retransmits;
    checkpoints = !checkpoints;
    restores = !restores;
  }

let to_json m =
  let rank_json (r : rank_row) =
    Json.Obj
      [
        ("rank", Json.Int r.rr_rank);
        ("compute", Json.Float r.rr_compute);
        ("comm", Json.Float r.rr_comm);
        ("blocked", Json.Float r.rr_blocked);
        ("finish", Json.Float r.rr_finish);
      ]
  in
  let sync_json (s : sync_row) =
    Json.Obj
      [
        ("id", Json.Int s.sr_id);
        ("label", Json.Str s.sr_label);
        ("loop",
         match s.sr_loop with Some v -> Json.Str v | None -> Json.Null);
        ("executions", Json.Int s.sr_executions);
        ("messages", Json.Int s.sr_messages);
        ("bytes", Json.Int s.sr_bytes);
        ("comm_time", Json.Float s.sr_comm_time);
        ("blocked_time", Json.Float s.sr_blocked_time);
        ("phase_time", Json.Float s.sr_phase_time);
      ]
  in
  let kind_json (k : kind_row) =
    Json.Obj
      [
        ("kind", Json.Str k.kb_kind);
        ("events", Json.Int k.kb_events);
        ("bytes", Json.Int k.kb_bytes);
        ("time", Json.Float k.kb_time);
      ]
  in
  let kernel_json (k : kernel_row) =
    Json.Obj
      [
        ("name", Json.Str k.kr_name);
        ("line", Json.Int k.kr_line);
        ("fused", Json.Bool k.kr_fused);
        ("frag", Json.Int k.kr_frag);
        ("nfrags", Json.Int k.kr_nfrags);
        ("calls", Json.Int k.kr_calls);
        ("flops", Json.Float k.kr_flops);
        ("bytes", Json.Float k.kr_bytes);
        ("self_time", Json.Float k.kr_self);
      ]
  in
  let sched_json (s : sched_stats) =
    Json.Obj
      [
        ("jobs", Json.Int s.sc_jobs);
        ("run", Json.Int s.sc_run);
        ("hits", Json.Int s.sc_hits);
        ("errors", Json.Int s.sc_errors);
        ("elapsed_wall", Json.Float s.sc_elapsed);
        ("workers",
         Json.List
           (List.map
              (fun w ->
                Json.Obj
                  [
                    ("worker", Json.Int w.sw_worker);
                    ("jobs", Json.Int w.sw_jobs);
                    ("busy_wall", Json.Float w.sw_busy);
                  ])
              s.sc_workers));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "autocfd-metrics/2");
      ("elapsed", Json.Float m.elapsed);
      ("messages", Json.Int m.messages);
      ("bytes", Json.Int m.bytes);
      ("faults", Json.Int m.faults);
      ("retransmits", Json.Int m.retransmits);
      ("checkpoints", Json.Int m.checkpoints);
      ("restores", Json.Int m.restores);
      ("by_kind", Json.List (List.map kind_json m.by_kind));
      ("ranks", Json.List (List.map rank_json (Array.to_list m.ranks)));
      ("sync_points", Json.List (List.map sync_json m.syncs));
      ("kernels", Json.List (List.map kernel_json m.kernels));
      ("sched",
       match m.sched with Some s -> sched_json s | None -> Json.Null);
    ]
