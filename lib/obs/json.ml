type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let render ~indent v =
  let b = Buffer.create 1024 in
  let pad depth =
    match indent with
    | None -> ()
    | Some unit_ ->
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (depth * unit_) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char b ' ' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s -> add_escaped b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            add_escaped b k;
            Buffer.add_char b ':';
            sep ();
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  (match indent with None -> () | Some _ -> Buffer.add_char b '\n');
  Buffer.contents b

let to_string v = render ~indent:None v
let pretty v = render ~indent:(Some 2) v

let rec sort_keys = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
  | List items -> List (List.map sort_keys items)
  | Obj fields ->
      Obj
        (List.stable_sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, sort_keys v)) fields))

let canonical v = to_string (sort_keys v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* decode a code point to UTF-8 bytes *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'; incr pos
            | '\\' -> Buffer.add_char b '\\'; incr pos
            | '/' -> Buffer.add_char b '/'; incr pos
            | 'b' -> Buffer.add_char b '\b'; incr pos
            | 'f' -> Buffer.add_char b '\012'; incr pos
            | 'n' -> Buffer.add_char b '\n'; incr pos
            | 'r' -> Buffer.add_char b '\r'; incr pos
            | 't' -> Buffer.add_char b '\t'; incr pos
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                add_utf8 b cp;
                pos := !pos + 5
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                fields ((k, v) :: acc)
              end
              else begin
                expect '}';
                List.rev ((k, v) :: acc)
              end
            in
            Obj (fields [])
      | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = ']' then begin
            incr pos;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                items (v :: acc)
              end
              else begin
                expect ']';
                List.rev (v :: acc)
              end
            in
            List (items [])
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected a number")
