(** Minimal JSON tree, printer and parser.

    The observability layer emits Chrome [trace_event] files and compact
    metrics documents; this module is the (dependency-free) substrate.  The
    printer produces RFC 8259 output; the parser accepts everything the
    printer emits (used by the round-trip tests and by tooling that diffs
    [BENCH_tables.json] across revisions). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats render as [null];
    finite floats use the shortest decimal form that round-trips. *)

val pretty : t -> string
(** Two-space indented rendering, for human-facing output files. *)

val canonical : t -> string
(** Compact rendering with every object's keys sorted recursively: two
    structurally equal documents produce byte-identical text regardless of
    construction order.  This is the content-addressing substrate of the
    result cache ({!Autocfd_sched}) — cache keys are FNV-64 hashes of this
    form. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float_exn : t -> float
(** Numeric coercion of [Int] or [Float].  @raise Parse_error otherwise. *)
