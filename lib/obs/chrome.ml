let us seconds = seconds *. 1e6

(* lane (Chrome "process") assignment: the simulated cluster, the sweep
   scheduler's worker domains (wall-clock), per-nest kernel summaries and
   the real Domains engine's wall-clock ranks each get their own pid so
   viewers render them as separate groups.  Wall-clock events ([ev_wall])
   must not share the virtual-clock lanes — their timestamps are on a
   different axis *)
let cluster_pid = 0
let sched_pid = 1
let kernel_pid = 2
let domains_pid = 3

let pid_of (e : Trace.event) =
  match e.Trace.ev_kind with
  | Trace.Sched _ -> sched_pid
  | Trace.Kernel _ when not e.Trace.ev_wall -> kernel_pid
  | _ when e.Trace.ev_wall -> domains_pid
  | _ -> cluster_pid

let event_json (e : Trace.event) =
  let name, cat, args =
    match e.Trace.ev_kind with
    | Trace.Compute -> ("compute", "compute", [])
    | Trace.Send { dest; tag; bytes } ->
        ( Printf.sprintf "send \xe2\x86\x92%d" dest,
          "comm",
          [ ("dest", Json.Int dest); ("tag", Json.Int tag);
            ("bytes", Json.Int bytes) ] )
    | Trace.Recv { src; tag; bytes } ->
        ( Printf.sprintf "recv \xe2\x86\x90%d" src,
          "comm",
          [ ("src", Json.Int src); ("tag", Json.Int tag);
            ("bytes", Json.Int bytes) ] )
    | Trace.Blocked { src; tag } ->
        if src < 0 then ("blocked (collective)", "blocked", [])
        else
          ( Printf.sprintf "blocked \xe2\x86\x90%d" src,
            "blocked",
            [ ("src", Json.Int src); ("tag", Json.Int tag) ] )
    | Trace.Collective { op; bytes } ->
        (op, "collective", [ ("bytes", Json.Int bytes) ])
    | Trace.Phase { label; loop; iter } ->
        ( label,
          "phase",
          (match loop with Some v -> [ ("loop", Json.Str v) ] | None -> [])
          @ (match iter with Some i -> [ ("iter", Json.Int i) ] | None -> [])
        )
    | Trace.Fault { what; peer } ->
        ( Printf.sprintf "fault:%s" what,
          "fault",
          if peer >= 0 then [ ("peer", Json.Int peer) ] else [] )
    | Trace.Retransmit { dest; tag; seq } ->
        ( Printf.sprintf "retransmit \xe2\x86\x92%d" dest,
          "proto",
          [ ("dest", Json.Int dest); ("tag", Json.Int tag);
            ("seq", Json.Int seq) ] )
    | Trace.Checkpoint { save; bytes } ->
        ( (if save then "checkpoint" else "restore"),
          "checkpoint",
          [ ("bytes", Json.Int bytes) ] )
    | Trace.Sched { what; job } ->
        (Printf.sprintf "%s:%s" what job, "sched", [ ("job", Json.Str job) ])
    | Trace.Kernel { name; line; fused; frag; nfrags; calls; flops; bytes }
      ->
        ( name,
          "kernel",
          ("line", Json.Int line) :: ("fused", Json.Bool fused)
          :: (if nfrags = 0 then []
              else
                [ ("frag", Json.Int frag); ("nfrags", Json.Int nfrags) ])
          @ [ ("calls", Json.Int calls); ("flops", Json.Float flops);
              ("bytes", Json.Float bytes) ] )
  in
  let args =
    if e.Trace.ev_sync >= 0 then ("sync", Json.Int e.Trace.ev_sync) :: args
    else args
  in
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "X");
      ("ts", Json.Float (us e.Trace.ev_t0));
      ("dur", Json.Float (us (e.Trace.ev_t1 -. e.Trace.ev_t0)));
      ("pid", Json.Int (pid_of e));
      ("tid", Json.Int e.Trace.ev_rank);
      ("args", Json.Obj args);
    ]

let meta ~pid name tid args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

(* one metadata record per populated lane: the cluster lane always names
   every rank; the scheduler and kernel lanes appear only when the trace
   holds such events *)
let metadata tr =
  let nranks = Trace.nranks tr in
  let sched_workers = ref (-1)
  and kernel_ranks = ref (-1)
  and domain_ranks = ref (-1) in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ev_wall then
        match e.Trace.ev_kind with
        | Trace.Sched _ -> sched_workers := max !sched_workers e.Trace.ev_rank
        | _ -> domain_ranks := max !domain_ranks e.Trace.ev_rank
      else
        match e.Trace.ev_kind with
        | Trace.Sched _ -> sched_workers := max !sched_workers e.Trace.ev_rank
        | Trace.Kernel _ -> kernel_ranks := max !kernel_ranks e.Trace.ev_rank
        | _ -> ())
    (Trace.events tr);
  let lane ~pid ~pname ~tname n =
    if n < 0 then []
    else
      meta ~pid "process_name" 0 [ ("name", Json.Str pname) ]
      :: List.init (n + 1) (fun r ->
             meta ~pid "thread_name" r
               [ ("name", Json.Str (Printf.sprintf tname r)) ])
  in
  lane ~pid:cluster_pid ~pname:"autocfd simulated cluster"
    ~tname:(format_of_string "rank %d") (nranks - 1)
  @ lane ~pid:sched_pid ~pname:"sweep scheduler"
      ~tname:(format_of_string "worker %d") !sched_workers
  @ lane ~pid:kernel_pid ~pname:"kernel self time"
      ~tname:(format_of_string "rank %d") !kernel_ranks
  @ lane ~pid:domains_pid ~pname:"domains engine (wall clock)"
      ~tname:(format_of_string "rank %d") !domain_ranks

let json tr =
  (* phase slices are emitted before the slices they contain so viewers
     that respect emission order nest them correctly; complete events are
     otherwise order-independent *)
  let phases, rest =
    List.partition
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with Trace.Phase _ -> true | _ -> false)
      (Trace.events tr)
  in
  Json.Obj
    [
      ("traceEvents",
       Json.List
         (metadata tr @ List.map event_json phases @ List.map event_json rest));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string tr = Json.to_string (json tr)
