let us seconds = seconds *. 1e6

let event_json (e : Trace.event) =
  let name, cat, args =
    match e.Trace.ev_kind with
    | Trace.Compute -> ("compute", "compute", [])
    | Trace.Send { dest; tag; bytes } ->
        ( Printf.sprintf "send \xe2\x86\x92%d" dest,
          "comm",
          [ ("dest", Json.Int dest); ("tag", Json.Int tag);
            ("bytes", Json.Int bytes) ] )
    | Trace.Recv { src; tag; bytes } ->
        ( Printf.sprintf "recv \xe2\x86\x90%d" src,
          "comm",
          [ ("src", Json.Int src); ("tag", Json.Int tag);
            ("bytes", Json.Int bytes) ] )
    | Trace.Blocked { src; tag } ->
        if src < 0 then ("blocked (collective)", "blocked", [])
        else
          ( Printf.sprintf "blocked \xe2\x86\x90%d" src,
            "blocked",
            [ ("src", Json.Int src); ("tag", Json.Int tag) ] )
    | Trace.Collective { op; bytes } ->
        (op, "collective", [ ("bytes", Json.Int bytes) ])
    | Trace.Phase { label; loop; iter } ->
        ( label,
          "phase",
          (match loop with Some v -> [ ("loop", Json.Str v) ] | None -> [])
          @ (match iter with Some i -> [ ("iter", Json.Int i) ] | None -> [])
        )
    | Trace.Fault { what; peer } ->
        ( Printf.sprintf "fault:%s" what,
          "fault",
          if peer >= 0 then [ ("peer", Json.Int peer) ] else [] )
    | Trace.Retransmit { dest; tag; seq } ->
        ( Printf.sprintf "retransmit \xe2\x86\x92%d" dest,
          "proto",
          [ ("dest", Json.Int dest); ("tag", Json.Int tag);
            ("seq", Json.Int seq) ] )
    | Trace.Checkpoint { save; bytes } ->
        ( (if save then "checkpoint" else "restore"),
          "checkpoint",
          [ ("bytes", Json.Int bytes) ] )
    | Trace.Sched { what; job } ->
        (Printf.sprintf "%s:%s" what job, "sched", [ ("job", Json.Str job) ])
  in
  let args =
    if e.Trace.ev_sync >= 0 then ("sync", Json.Int e.Trace.ev_sync) :: args
    else args
  in
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "X");
      ("ts", Json.Float (us e.Trace.ev_t0));
      ("dur", Json.Float (us (e.Trace.ev_t1 -. e.Trace.ev_t0)));
      ("pid", Json.Int 0);
      ("tid", Json.Int e.Trace.ev_rank);
      ("args", Json.Obj args);
    ]

let metadata nranks =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  meta "process_name" 0
    [ ("name", Json.Str "autocfd simulated cluster") ]
  :: List.init nranks (fun r ->
         meta "thread_name" r
           [ ("name", Json.Str (Printf.sprintf "rank %d" r)) ])

let json tr =
  (* phase slices are emitted before the slices they contain so viewers
     that respect emission order nest them correctly; complete events are
     otherwise order-independent *)
  let phases, rest =
    List.partition
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with Trace.Phase _ -> true | _ -> false)
      (Trace.events tr)
  in
  Json.Obj
    [
      ("traceEvents",
       Json.List
         (metadata (Trace.nranks tr)
         @ List.map event_json phases
         @ List.map event_json rest));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string tr = Json.to_string (json tr)
