type kind = Counter | Gauge | Histogram

type hist = {
  hg_bounds : float array;  (* ascending bucket upper bounds (inclusive) *)
  hg_counts : int array;  (* length = bounds + 1; last slot = +Inf overflow *)
  mutable hg_sum : float;
  mutable hg_count : int;
}

type cell = {
  cl_labels : (string * string) list;  (* sorted by label name *)
  mutable cl_value : float;
  cl_hist : hist option;
}

type family = {
  fm_name : string;
  mutable fm_help : string;
  fm_kind : kind;
  fm_cells : (string, cell) Hashtbl.t;  (* keyed by canonical label text *)
}

type t = { fams : (string, family) Hashtbl.t }

let create () = { fams = Hashtbl.create 32 }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)
(* ------------------------------------------------------------------ *)

let log_buckets ~lo ~hi =
  if not (lo > 0.0 && hi > lo) then
    invalid_arg "Registry.log_buckets: need 0 < lo < hi";
  let rec go acc b = if b >= hi then List.rev (b :: acc) else go (b :: acc) (b *. 2.0) in
  Array.of_list (go [] lo)

(* power-of-two decades: 1 µs .. ~16 s *)
let seconds_buckets = log_buckets ~lo:1e-6 ~hi:16.0

(* 64 B .. 16 MiB *)
let bytes_buckets = log_buckets ~lo:64.0 ~hi:16777216.0

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat "\x00"
    (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let family t ~kind ~help name =
  match Hashtbl.find_opt t.fams name with
  | Some f ->
      if f.fm_kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s is a %s, not a %s" name
             (kind_name f.fm_kind) (kind_name kind));
      if f.fm_help = "" then f.fm_help <- help;
      f
  | None ->
      let f =
        { fm_name = name; fm_help = help; fm_kind = kind;
          fm_cells = Hashtbl.create 4 }
      in
      Hashtbl.replace t.fams name f;
      f

let cell f ~labels ~mk =
  let labels = canon_labels labels in
  let key = label_key labels in
  match Hashtbl.find_opt f.fm_cells key with
  | Some c -> c
  | None ->
      let c = mk labels in
      Hashtbl.replace f.fm_cells key c;
      c

let scalar_cell labels = { cl_labels = labels; cl_value = 0.0; cl_hist = None }

let inc t ?(help = "") ?(labels = []) name v =
  let f = family t ~kind:Counter ~help name in
  let c = cell f ~labels ~mk:scalar_cell in
  c.cl_value <- c.cl_value +. v

let set t ?(help = "") ?(labels = []) name v =
  let f = family t ~kind:Gauge ~help name in
  let c = cell f ~labels ~mk:scalar_cell in
  c.cl_value <- v

let observe t ?(help = "") ?(labels = []) ?(buckets = seconds_buckets) name v =
  let f = family t ~kind:Histogram ~help name in
  let c =
    cell f ~labels ~mk:(fun labels ->
        { cl_labels = labels; cl_value = 0.0;
          cl_hist =
            Some
              { hg_bounds = Array.copy buckets;
                hg_counts = Array.make (Array.length buckets + 1) 0;
                hg_sum = 0.0; hg_count = 0 } })
  in
  let h = Option.get c.cl_hist in
  let nb = Array.length h.hg_bounds in
  (* first bucket whose upper bound is >= v ("le" semantics); the last
     slot catches values above every bound *)
  let rec find i = if i >= nb || v <= h.hg_bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  h.hg_counts.(i) <- h.hg_counts.(i) + 1;
  h.hg_sum <- h.hg_sum +. v;
  h.hg_count <- h.hg_count + 1

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let find_cell t ?(labels = []) name =
  match Hashtbl.find_opt t.fams name with
  | None -> None
  | Some f -> Hashtbl.find_opt f.fm_cells (label_key (canon_labels labels))

let value t ?labels name =
  match find_cell t ?labels name with
  | Some { cl_hist = None; cl_value; _ } -> Some cl_value
  | _ -> None

let hist_counts t ?labels name =
  match find_cell t ?labels name with
  | Some { cl_hist = Some h; _ } ->
      Some (Array.copy h.hg_bounds, Array.copy h.hg_counts, h.hg_sum, h.hg_count)
  | _ -> None

let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.fams []
  |> List.sort (fun a b -> String.compare a.fm_name b.fm_name)

let sorted_cells f =
  Hashtbl.fold (fun _ c acc -> c :: acc) f.fm_cells []
  |> List.sort (fun a b -> compare a.cl_labels b.cl_labels)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let float_text f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_text labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let to_prometheus t =
  let b = Buffer.create 4096 in
  let sample name labels v =
    Buffer.add_string b name;
    Buffer.add_string b (label_text labels);
    Buffer.add_char b ' ';
    Buffer.add_string b (float_text v);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun f ->
      if f.fm_help <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" f.fm_name f.fm_help);
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.fm_name (kind_name f.fm_kind));
      List.iter
        (fun c ->
          match c.cl_hist with
          | None -> sample f.fm_name c.cl_labels c.cl_value
          | Some h ->
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.hg_counts.(i);
                  sample (f.fm_name ^ "_bucket")
                    (c.cl_labels @ [ ("le", float_text bound) ])
                    (float_of_int !cum))
                h.hg_bounds;
              sample (f.fm_name ^ "_bucket")
                (c.cl_labels @ [ ("le", "+Inf") ])
                (float_of_int h.hg_count);
              sample (f.fm_name ^ "_sum") c.cl_labels h.hg_sum;
              sample (f.fm_name ^ "_count") c.cl_labels
                (float_of_int h.hg_count))
        (sorted_cells f))
    (sorted_families t);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus parsing (round-trip checks and tooling)                  *)
(* ------------------------------------------------------------------ *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

exception Parse_error of string

let parse_value text =
  match text with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
      match float_of_string_opt text with
      | Some v -> v
      | None -> raise (Parse_error ("bad sample value: " ^ text)))

let parse_labels s =
  (* s is the text between '{' and '}' *)
  let n = String.length s in
  let pos = ref 0 in
  let labels = ref [] in
  let fail msg = raise (Parse_error msg) in
  while !pos < n do
    let eq =
      match String.index_from_opt s !pos '=' with
      | Some i -> i
      | None -> fail "label without '='"
    in
    let name = String.trim (String.sub s !pos (eq - !pos)) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then fail "label value not quoted";
    let b = Buffer.create 16 in
    let i = ref (eq + 2) in
    let closed = ref false in
    while not !closed do
      if !i >= n then fail "unterminated label value"
      else
        match s.[!i] with
        | '"' ->
            closed := true;
            incr i
        | '\\' ->
            if !i + 1 >= n then fail "truncated escape";
            (match s.[!i + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            i := !i + 2
        | c ->
            Buffer.add_char b c;
            incr i
    done;
    labels := (name, Buffer.contents b) :: !labels;
    pos := !i;
    if !pos < n then
      if s.[!pos] = ',' then incr pos
      else fail "expected ',' between labels"
  done;
  List.rev !labels

let parse_prometheus text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '{' with
           | Some lb ->
               let rb =
                 match String.rindex_opt line '}' with
                 | Some i when i > lb -> i
                 | _ -> raise (Parse_error ("unbalanced '{': " ^ line))
               in
               let name = String.sub line 0 lb in
               let labels =
                 parse_labels (String.sub line (lb + 1) (rb - lb - 1))
               in
               let rest = String.trim
                   (String.sub line (rb + 1) (String.length line - rb - 1))
               in
               Some
                 { s_name = name; s_labels = labels;
                   s_value = parse_value rest }
           | None -> (
               match String.index_opt line ' ' with
               | None -> raise (Parse_error ("sample without value: " ^ line))
               | Some sp ->
                   let name = String.sub line 0 sp in
                   let rest =
                     String.trim
                       (String.sub line (sp + 1) (String.length line - sp - 1))
                   in
                   Some
                     { s_name = name; s_labels = [];
                       s_value = parse_value rest }))

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let cell_json (c : cell) =
    let labels =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) c.cl_labels)
    in
    match c.cl_hist with
    | None -> Json.Obj [ ("labels", labels); ("value", Json.Float c.cl_value) ]
    | Some h ->
        Json.Obj
          [
            ("labels", labels);
            ("buckets",
             Json.List
               (List.init (Array.length h.hg_bounds) (fun i ->
                    Json.Obj
                      [
                        ("le", Json.Float h.hg_bounds.(i));
                        ("count", Json.Int h.hg_counts.(i));
                      ])
               @ [
                   Json.Obj
                     [
                       ("le", Json.Null);  (* +Inf overflow slot *)
                       ("count",
                        Json.Int h.hg_counts.(Array.length h.hg_bounds));
                     ];
                 ]));
            ("sum", Json.Float h.hg_sum);
            ("count", Json.Int h.hg_count);
          ]
  in
  Json.Obj
    [
      ("schema", Json.Str "autocfd-registry/1");
      ("metrics",
       Json.List
         (List.map
            (fun f ->
              Json.Obj
                [
                  ("name", Json.Str f.fm_name);
                  ("type", Json.Str (kind_name f.fm_kind));
                  ("help", Json.Str f.fm_help);
                  ("series", Json.List (List.map cell_json (sorted_cells f)));
                ])
            (sorted_families t)));
    ]

(* ------------------------------------------------------------------ *)
(* Trace feeding                                                       *)
(* ------------------------------------------------------------------ *)

let observe_trace t tr =
  let soi = string_of_int in
  List.iter
    (fun (e : Trace.event) ->
      let dur = e.Trace.ev_t1 -. e.Trace.ev_t0 in
      match e.Trace.ev_kind with
      | Trace.Compute ->
          inc t "autocfd_compute_seconds_total" dur
            ~help:"virtual compute seconds across ranks"
      | Trace.Send { bytes; _ } ->
          inc t "autocfd_messages_total" 1.0 ~labels:[ ("kind", "send") ]
            ~help:"messages originated (p2p sends and collective participations)";
          inc t "autocfd_comm_bytes_total" (float_of_int bytes)
            ~labels:[ ("kind", "send") ]
            ~help:"payload bytes originated, by communication kind";
          inc t "autocfd_comm_seconds_total" dur ~labels:[ ("kind", "send") ]
            ~help:"virtual communication seconds, by kind";
          observe t "autocfd_message_bytes" (float_of_int bytes)
            ~labels:[ ("kind", "send") ] ~buckets:bytes_buckets
            ~help:"message size distribution"
      | Trace.Recv { bytes = _; _ } ->
          inc t "autocfd_comm_seconds_total" dur ~labels:[ ("kind", "recv") ]
            ~help:"virtual communication seconds, by kind"
      | Trace.Blocked { tag; _ } when e.Trace.ev_wall ->
          (* real Domains-engine waits, measured on the host wall clock:
             tag = -1 marks a barrier/collective, anything else a
             point-to-point receive *)
          let kind = if tag < 0 then "barrier" else "recv" in
          inc t "autocfd_domains_wait_seconds_total" dur
            ~labels:[ ("kind", kind) ]
            ~help:"wall-clock seconds Domains-engine ranks spent blocked";
          observe t "autocfd_domains_barrier_wait_seconds" dur
            ~labels:[ ("kind", kind); ("rank", soi e.Trace.ev_rank) ]
            ~help:
              "per-rank wall-clock wait distribution of the Domains engine"
      | Trace.Blocked _ ->
          inc t "autocfd_blocked_seconds_total" dur
            ~help:"virtual blocked-idle seconds across ranks"
      | Trace.Collective { op; bytes } ->
          inc t "autocfd_messages_total" 1.0 ~labels:[ ("kind", "collective") ]
            ~help:"messages originated (p2p sends and collective participations)";
          inc t "autocfd_comm_bytes_total" (float_of_int bytes)
            ~labels:[ ("kind", "collective") ]
            ~help:"payload bytes originated, by communication kind";
          inc t "autocfd_comm_seconds_total" dur
            ~labels:[ ("kind", "collective") ]
            ~help:"virtual communication seconds, by kind";
          inc t "autocfd_collectives_total" 1.0 ~labels:[ ("op", op) ]
            ~help:"per-rank collective participations, by operation";
          observe t "autocfd_message_bytes" (float_of_int bytes)
            ~labels:[ ("kind", "collective") ] ~buckets:bytes_buckets
            ~help:"message size distribution"
      | Trace.Phase { label; _ } ->
          inc t "autocfd_sync_executions_total" 1.0
            ~labels:[ ("sync", label) ]
            ~help:"phase entries per combined synchronization point";
          observe t "autocfd_sync_latency_seconds" dur
            ~labels:[ ("sync", label) ]
            ~help:"per-execution latency of each combined sync point"
      | Trace.Fault { what; _ } ->
          inc t "autocfd_faults_total" 1.0 ~labels:[ ("what", what) ]
            ~help:"injected fault events"
      | Trace.Retransmit _ ->
          inc t "autocfd_retransmits_total" 1.0
            ~help:"reliable-transport retransmissions"
      | Trace.Checkpoint { save; bytes } ->
          inc t "autocfd_checkpoints_total" 1.0
            ~labels:[ ("op", (if save then "save" else "restore")) ]
            ~help:"recovery-layer snapshots and restores";
          inc t "autocfd_checkpoint_bytes_total" (float_of_int bytes)
            ~help:"bytes moved by the recovery layer"
      | Trace.Sched { what; _ } ->
          inc t "autocfd_sched_jobs_total" 1.0 ~labels:[ ("outcome", what) ]
            ~help:"sweep jobs by outcome (run / hit / error)";
          observe t "autocfd_sched_job_seconds" dur
            ~help:"wall-clock job handling time in the sweep pool";
          inc t "autocfd_sched_busy_seconds_total" dur
            ~labels:[ ("worker", soi e.Trace.ev_rank) ]
            ~help:"wall-clock busy seconds per pool worker"
      | Trace.Kernel { name; calls; flops; bytes; _ } ->
          let labels = [ ("kernel", name) ] in
          inc t "autocfd_kernel_calls_total" (float_of_int calls) ~labels
            ~help:"field-loop nest executions";
          inc t "autocfd_kernel_flops_total" flops ~labels
            ~help:"self flops per field-loop nest";
          inc t "autocfd_kernel_bytes_total" bytes ~labels
            ~help:"bytes moved by the fused kernel tier per nest";
          if e.Trace.ev_wall then
            inc t "autocfd_domains_kernel_seconds_total" dur ~labels
              ~help:
                "measured wall-clock self seconds per nest (Domains engine)"
          else
            inc t "autocfd_kernel_self_seconds_total" dur ~labels
              ~help:"virtual self compute seconds per field-loop nest")
    (Trace.events tr)
