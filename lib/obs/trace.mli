(** Structured execution tracing for the simulated cluster.

    A tracer is an append-only buffer of per-rank timed events on the
    simulator's virtual clock.  The simulator ({!Autocfd_mpsim.Sim})
    records every mutation of a rank's clock — computation, send and
    receive overheads, blocked-idle intervals and collective costs — so a
    complete trace partitions each rank's timeline exactly: per rank,
    compute + comm + blocked = finish time.

    The SPMD executor additionally marks {e phases}: the interval a rank
    spends inside one combined synchronization point (halo exchange,
    pipeline handoff, reduction, broadcast, allgather), tagged with the
    sync-point id, its enclosing loop variable and current iteration.
    While a phase is open, the rank's {e sync context} is set, so the
    simulator-level events recorded inside it inherit the sync-point id —
    that is what lets {!Metrics} attribute every byte and every blocked
    second to a specific synchronization point.

    Tracing is strictly opt-in: when no tracer is passed to the simulator,
    not a single event is allocated and simulated timings are unchanged. *)

type kind =
  | Compute
  | Send of { dest : int; tag : int; bytes : int }
  | Recv of { src : int; tag : int; bytes : int }
  | Blocked of { src : int; tag : int }
      (** idle, waiting on (src, tag); [src = -1] means waiting for a
          collective to assemble *)
  | Collective of { op : string; bytes : int }
  | Phase of { label : string; loop : string option; iter : int option }
  | Fault of { what : string; peer : int }
      (** an injected fault ("loss", "corrupt", "duplicate", "stall",
          "crash"); [peer] is the destination rank, or [-1] when the
          fault is not tied to a link *)
  | Retransmit of { dest : int; tag : int; seq : int }
      (** the reliable transport resent an unacknowledged envelope *)
  | Checkpoint of { save : bool; bytes : int }
      (** recovery layer snapshot ([save = true]) or restore *)
  | Sched of { what : string; job : string }
      (** sweep-scheduler event ({!Autocfd_sched.Pool}): [what] is
          ["run"], ["hit"] (result served from the cache) or ["error"];
          [job] is the job's label.  The "rank" of such an event is the
          worker domain that handled the job, and its timestamps are
          host wall-clock seconds since the pool started — a sweep trace
          shares the event format, not the virtual clock, of a simulator
          trace. *)
  | Kernel of {
      name : string;
      line : int;
      fused : bool;
      frag : int;
      nfrags : int;
      calls : int;
      flops : float;
      bytes : float;
    }
      (** per-nest profile summary emitted by the SPMD executor once per
          rank at the end of a run (fused engine only): [name] identifies
          the field-loop nest ([line] is its outermost DO's source line),
          [frag]/[nfrags] carry loop-fission provenance — fragment index
          (1-based) and fragment count of the source nest the loop-fission
          pass split, or [0]/[0] for an unsplit nest —
          [calls]/[flops]/[bytes] are the rank's self totals, and the
          event's span [ev_t1 - ev_t0] is the nest's self time on the
          virtual clock ([flops * flop_time]).  A summary, not a timeline
          slice: {!Metrics} excludes it from the per-rank accounting and
          aggregates it into its kernel table instead. *)

type event = {
  ev_rank : int;
  ev_t0 : float;  (** virtual seconds — or wall seconds when [ev_wall] *)
  ev_t1 : float;
  ev_sync : int;  (** combined sync-point id; [-1] outside any phase *)
  ev_wall : bool;
      (** [true] for events timed on the host wall clock by the real
          shared-memory [Domains] engine; they live on a separate
          timeline (and Chrome lane) from virtual-clock events *)
  ev_kind : kind;
}

type t

val create : unit -> t

val prepare : t -> nranks:int -> unit
(** Called by the simulator at the start of a run; sizes the per-rank sync
    context.  Idempotent; events recorded earlier are kept. *)

val record : t -> ?wall:bool -> rank:int -> t0:float -> t1:float -> kind -> unit
(** Append one event; its sync id is the rank's current context.
    [wall] (default [false]) marks the timestamps as host wall-clock. *)

val set_sync : t -> rank:int -> sync:int -> unit
val clear_sync : t -> rank:int -> unit

val phase :
  t ->
  ?wall:bool ->
  rank:int ->
  t0:float ->
  t1:float ->
  sync:int ->
  label:string ->
  ?loop:string ->
  ?iter:int ->
  unit ->
  unit
(** Append a phase-span event (recorded with [ev_sync = sync] regardless
    of the current context). *)

val events : t -> event list
(** All events in recording order (per rank: non-decreasing [ev_t0]). *)

val nranks : t -> int
val length : t -> int
