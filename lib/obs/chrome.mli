(** Chrome [trace_event] export: the traced run as a JSON document loadable
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Events are grouped into up to three Chrome "processes" (lanes):

    - pid 0 — the simulated cluster: one thread per rank (tid = rank),
      virtual-time timestamps in microseconds.  Slice categories:
      [compute], [comm], [blocked], [collective], [phase] (the combined
      synchronization points, enclosing their constituent slices),
      [fault], [proto] and [checkpoint].
    - pid 1 — the sweep scheduler: one thread per worker domain, slices
      on host wall-clock (category [sched]).
    - pid 2 — kernel self-time summaries: one slice per field-loop nest
      per rank, whose duration is the nest's self compute time on the
      virtual clock (category [kernel]).
    - pid 3 — the real shared-memory Domains engine: one thread per
      domain rank, every slice timed on the host wall clock
      ([Trace.event.ev_wall]); phases, barrier/recv blocked intervals
      and per-nest kernel summaries all live in this lane so the
      wall-clock timeline never interleaves with virtual-clock lanes.

    The scheduler, kernel and domains lanes are emitted only when the
    trace holds such events. *)

val json : Trace.t -> Json.t
val to_string : Trace.t -> string
