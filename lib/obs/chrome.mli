(** Chrome [trace_event] export: the traced run as a JSON document loadable
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Events are grouped into up to three Chrome "processes" (lanes):

    - pid 0 — the simulated cluster: one thread per rank (tid = rank),
      virtual-time timestamps in microseconds.  Slice categories:
      [compute], [comm], [blocked], [collective], [phase] (the combined
      synchronization points, enclosing their constituent slices),
      [fault], [proto] and [checkpoint].
    - pid 1 — the sweep scheduler: one thread per worker domain, slices
      on host wall-clock (category [sched]).
    - pid 2 — kernel self-time summaries: one slice per field-loop nest
      per rank, whose duration is the nest's self compute time on the
      virtual clock (category [kernel]).

    The scheduler and kernel lanes are emitted only when the trace holds
    such events. *)

val json : Trace.t -> Json.t
val to_string : Trace.t -> string
