(** Chrome [trace_event] export: the traced run as a JSON document loadable
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Each simulated rank becomes one thread (tid = rank) of a single
    process; every trace event becomes a complete ("ph":"X") slice with
    virtual-time timestamps in microseconds.  Slice categories: [compute],
    [comm], [blocked], [collective] and [phase] (the combined
    synchronization points, enclosing their constituent slices). *)

val json : Trace.t -> Json.t
val to_string : Trace.t -> string
