(** Derived metrics of one traced run: where did every simulated second go
    (per rank: compute / communication / blocked-idle), which combined
    synchronization point is responsible for every message, byte and
    blocked second, which field-loop nest is responsible for every
    compute second, and — for sweep traces — what the scheduler's worker
    domains did on the wall clock. *)

type rank_row = {
  rr_rank : int;
  rr_compute : float;  (** seconds charged by [Sim.advance] *)
  rr_comm : float;  (** send/recv overheads + collective costs *)
  rr_blocked : float;  (** idle waiting on messages or collectives *)
  rr_finish : float;  (** the rank's final virtual time *)
}

type sync_row = {
  sr_id : int;  (** sync-point id (program order in the SPMD unit) *)
  sr_label : string;
  sr_loop : string option;  (** enclosing DO variable, if any *)
  sr_executions : int;  (** phase entries across all ranks *)
  sr_messages : int;  (** p2p sends + per-rank collective participations *)
  sr_bytes : int;
  sr_comm_time : float;  (** summed over ranks *)
  sr_blocked_time : float;  (** summed over ranks *)
  sr_phase_time : float;  (** total rank-seconds inside the phase *)
}

type kind_row = {
  kb_kind : string;  (** ["send"], ["recv"] or ["collective"] *)
  kb_events : int;
  kb_bytes : int;
  kb_time : float;  (** comm seconds attributed to this kind *)
}
(** Per-kind communication breakdown.  The top-level [messages]/[bytes]
    totals count sends and per-rank collective participations; recv rows
    appear here only (their wire bytes were already counted at the
    sending side). *)

type kernel_row = {
  kr_name : string;
  kr_line : int;  (** source line of the nest's outermost DO *)
  kr_fused : bool;
  kr_frag : int;  (** loop-fission fragment index (1-based), 0 = unsplit *)
  kr_nfrags : int;  (** fragment count of the source nest, 0 = unsplit *)
  kr_calls : int;  (** nest executions, summed over ranks *)
  kr_flops : float;  (** self flops (excluding inner profiled nests) *)
  kr_bytes : float;  (** bytes moved by the fused kernel tier (0 = unknown) *)
  kr_self : float;  (** self virtual-compute seconds, summed over ranks *)
}
(** One field-loop nest, aggregated over every {!Trace.Kernel} summary
    event (i.e. over ranks).  Sorted by descending self time. *)

type sched_worker = {
  sw_worker : int;
  sw_jobs : int;
  sw_busy : float;  (** wall-clock seconds handling jobs *)
}

type sched_stats = {
  sc_jobs : int;
  sc_run : int;
  sc_hits : int;  (** served from the result cache *)
  sc_errors : int;
  sc_elapsed : float;  (** wall-clock span of the recorded sweep events *)
  sc_workers : sched_worker list;  (** ascending worker id *)
}
(** Wall-clock section for {!Trace.Sched} events.  Kept separate from the
    virtual-clock rank rows: a sweep trace measures the host machine, not
    the simulated cluster. *)

type t = {
  ranks : rank_row array;
  syncs : sync_row list;  (** ascending sync-point id; executed points only *)
  elapsed : float;
  messages : int;  (** sends + per-rank collective participations *)
  bytes : int;  (** payload bytes of the above *)
  by_kind : kind_row list;  (** in first-appearance order *)
  kernels : kernel_row list;  (** descending self time *)
  sched : sched_stats option;  (** [None] when the trace has no sweep events *)
  faults : int;  (** injected fault events (loss/corrupt/dup/stall/crash) *)
  retransmits : int;  (** reliable-transport retransmissions *)
  checkpoints : int;  (** recovery-layer snapshots taken (across ranks) *)
  restores : int;  (** recovery-layer snapshot restores (across ranks) *)
}

val of_trace : Trace.t -> t

val to_json : t -> Json.t
(** Compact machine-readable document (schema version ["autocfd-metrics/2"]). *)
