(** Derived metrics of one traced run: where did every simulated second go
    (per rank: compute / communication / blocked-idle), and which combined
    synchronization point is responsible for every message, byte and
    blocked second. *)

type rank_row = {
  rr_rank : int;
  rr_compute : float;  (** seconds charged by [Sim.advance] *)
  rr_comm : float;  (** send/recv overheads + collective costs *)
  rr_blocked : float;  (** idle waiting on messages or collectives *)
  rr_finish : float;  (** the rank's final virtual time *)
}

type sync_row = {
  sr_id : int;  (** sync-point id (program order in the SPMD unit) *)
  sr_label : string;
  sr_loop : string option;  (** enclosing DO variable, if any *)
  sr_executions : int;  (** phase entries across all ranks *)
  sr_messages : int;
  sr_bytes : int;
  sr_comm_time : float;  (** summed over ranks *)
  sr_blocked_time : float;  (** summed over ranks *)
  sr_phase_time : float;  (** total rank-seconds inside the phase *)
}

type t = {
  ranks : rank_row array;
  syncs : sync_row list;  (** ascending sync-point id; executed points only *)
  elapsed : float;
  messages : int;
  bytes : int;
  faults : int;  (** injected fault events (loss/corrupt/dup/stall/crash) *)
  retransmits : int;  (** reliable-transport retransmissions *)
  checkpoints : int;  (** recovery-layer snapshots taken (across ranks) *)
  restores : int;  (** recovery-layer snapshot restores (across ranks) *)
}

val of_trace : Trace.t -> t

val to_json : t -> Json.t
(** Compact machine-readable document (schema version ["autocfd-metrics/1"]). *)
