(** Reliable point-to-point transport over the raw eager primitives.

    One {!t} per rank per run.  Every payload travels inside a
    seq-numbered, checksummed envelope; the receiver acknowledges each
    envelope on a dedicated ack tag and suppresses duplicates; the sender
    buffers unacknowledged envelopes and retransmits them (all of them,
    selective-repeat style) whenever one of its own receive deadlines
    expires, with exponential backoff on the deadline.  Corrupted
    envelopes fail their checksum and are dropped — indistinguishable
    from loss, and recovered the same way.

    The per-rank watchdog comes from {!Sim.recv_deadline}: deadlines fire
    only when the whole simulation would otherwise stall, so retries cost
    nothing while data flows.  After [rt_max_retries] fruitless rounds an
    endpoint falls back to an unbounded blocking wait; if the peer is
    truly gone (crashed, or an unrecoverable loss rate), the simulator
    raises {!Sim.Timeout} with per-rank diagnostics.

    Sends stay eager (never block).  Delivery on one (src, tag) stream is
    exactly-once and in order.  Call {!flush} before every collective and
    at the end of the rank's work so no envelope is abandoned while its
    sender parks somewhere a retransmit cannot happen. *)

type cfg = {
  rt_timeout : float;  (** initial receive deadline, virtual seconds *)
  rt_backoff : float;  (** deadline multiplier per fruitless round, >= 1 *)
  rt_max_retries : int;  (** rounds before falling back to a blocking wait *)
  rt_flush_retries : int;
      (** ack-wait rounds in {!flush} before abandoning (the peer may
          legitimately never re-ack: it only acks when it touches the
          stream, and it may already be parked in a collective) *)
  rt_ack_tag_base : int;  (** acks for data tag [t] travel on [t + base] *)
}

val default_cfg : net:Netmodel.t -> cfg
(** Timeout of one MTU flight time with no backoff — deadlines fire only
    when the simulation would otherwise stall, so short constant timeouts
    are free while data flows and keep the virtual-clock cost of each
    fruitless round small; a couple dozen retries, a handful of flush
    rounds, ack tags far above the simulator's data tags. *)

type t

val create : ?cfg:cfg -> Sim.comm -> t
(** [cfg] defaults to [default_cfg ~net:(Sim.net_of c)]. *)

val send : t -> dest:int -> tag:int -> float array -> unit
(** Envelope, buffer as unacknowledged, send eagerly. *)

val recv : t -> src:int -> tag:int -> float array
(** Next in-sequence payload on (src, tag): exactly-once, in order,
    checksum-verified.  Retransmits this endpoint's own unacknowledged
    envelopes on every expired deadline while waiting. *)

val flush : t -> unit
(** Block until every envelope this endpoint sent has been acknowledged,
    retransmitting as needed. *)

type stats = {
  rl_retransmits : int;
  rl_dup_suppressed : int;  (** duplicate envelopes discarded *)
  rl_checksum_failures : int;  (** corrupted envelopes discarded *)
  rl_acks : int;  (** acknowledgements consumed *)
}

val stats : t -> stats
