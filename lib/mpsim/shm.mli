(** Real shared-memory runtime for the [Domains] execution engine.

    [run ~nranks body] executes [nranks] copies of [body] in parallel,
    each on its own OCaml 5 domain (rank 0 on the calling domain).  Where
    {!Sim} multiplexes cooperative fibers over a virtual clock, this
    module provides the same rendezvous vocabulary over real mutexes and
    condition variables, timed with the wall clock:

    - {!barrier} is a sense-reversing mutex/condvar barrier;
    - {!allreduce} is deterministic: every rank folds the contributed
      values in rank order 0..n-1 with exactly {!Sim}'s combine order, so
      a [Domains] run is bit-identical to a simulated one;
    - {!bcast} publishes the root's payload through a shared slot;
    - {!send}/{!recv} are copying mailboxes for pipeline streams, keyed
      (src, dest, tag) like the simulator's eager channels.

    Fields of the executed program need no marshalling: OCaml 5 domains
    share one heap, so a plain [float array] written before a barrier is
    readable by every other rank after it (the barrier's mutex provides
    the happens-before edge).

    Every blocking wait is measured ({!rank_stats}); barrier-wait samples
    feed the observability layer's histograms and the per-rank blocked
    spans of the wall-clock trace lane.

    An exception in any rank poisons the run: all ranks blocked at a
    barrier, mailbox or collective are woken and unwound, the domains are
    joined, and {!Rank_failure} carries the original exception. *)

type comm

exception Rank_failure of int * exn
(** Raised by {!run} after joining all domains when a rank's body raised:
    carries the lowest-numbered failing rank and its exception. *)

val rank : comm -> int
val nranks : comm -> int

val barrier : comm -> unit
(** Sense-reversing barrier across all ranks.  The wait (if any) is
    recorded as a barrier-wait sample. *)

val allreduce : comm -> [ `Max | `Min | `Sum ] -> float -> float
(** Global reduction; every rank receives the combined value.  The fold
    runs in rank order 0..n-1 with [Float.max] / [Float.min] / [(+.)],
    matching {!Sim.allreduce} bit-for-bit. *)

val bcast : comm -> root:int -> float array -> float array
(** Root's payload is delivered (as a fresh copy) to every rank. *)

val send : comm -> dest:int -> tag:int -> float array -> unit
(** Nonblocking mailbox send; the payload is copied. *)

val recv : comm -> src:int -> tag:int -> float array
(** Blocking mailbox receive matching exactly (src, tag).  The wait (if
    any) is recorded as a receive-wait sample. *)

val time : comm -> float
(** Wall-clock seconds since the enclosing {!run} started. *)

type wait = {
  w_start : float;  (** seconds since run start when the wait began *)
  w_dur : float;  (** seconds spent blocked *)
  w_barrier : bool;  (** [true] for barrier/collective assembly waits,
                         [false] for mailbox receive waits *)
}

type rank_stats = {
  rs_wall : float;  (** seconds from run start to this rank's return *)
  rs_barrier_wait : float;  (** total seconds blocked in barriers *)
  rs_barrier_calls : int;
  rs_recv_wait : float;  (** total seconds blocked in mailbox receives *)
  rs_sends : int;
  rs_recvs : int;
  rs_bytes : int;  (** mailbox payload bytes sent *)
  rs_collectives : int;  (** barriers + allreduces + bcasts entered *)
  rs_waits : wait list;  (** every measured blocking wait, in time order *)
}

type stats = { elapsed : float; ranks : rank_stats array }
(** [elapsed] is the slowest rank's wall clock — the parallel makespan. *)

val run : nranks:int -> (comm -> unit) -> stats
(** @raise Invalid_argument when [nranks < 1].
    @raise Rank_failure when any rank's body raised (see above); the
    remaining ranks are unwound and joined first, so no domain leaks. *)
