module Trace = Autocfd_obs.Trace

type cfg = {
  rt_timeout : float;
  rt_backoff : float;
  rt_max_retries : int;
  rt_flush_retries : int;
  rt_ack_tag_base : int;
}

(* Deadlines fire only when the whole simulation would otherwise stall,
   so a short timeout costs nothing while data flows and a long one only
   inflates the virtual clock of a rank that was stuck anyway: default to
   a single MTU flight time with no backoff. *)
let default_cfg ~net =
  let mtu_flight =
    net.Netmodel.latency
    +. (1500.0 /. net.Netmodel.bandwidth)
    +. net.Netmodel.send_overhead +. net.Netmodel.recv_overhead
  in
  {
    rt_timeout = Float.max 1e-9 mtu_flight;
    rt_backoff = 1.0;
    rt_max_retries = 20;
    rt_flush_retries = 4;
    rt_ack_tag_base = 1 lsl 20;
  }

type stats = {
  rl_retransmits : int;
  rl_dup_suppressed : int;
  rl_checksum_failures : int;
  rl_acks : int;
}

type t = {
  c : Sim.comm;
  cfg : cfg;
  send_seq : (int * int, int ref) Hashtbl.t;  (* (dest, tag) -> next seq *)
  unacked : (int * int * int, float array) Hashtbl.t;
      (* (dest, tag, seq) -> envelope as sent *)
  recv_next : (int * int, int ref) Hashtbl.t;  (* (src, tag) -> expected *)
  recv_buf : (int * int * int, float array) Hashtbl.t;
      (* (src, tag, seq) -> payload, seq >= expected *)
  mutable n_retransmits : int;
  mutable n_dup : int;
  mutable n_cksum : int;
  mutable n_acks : int;
}

let create ?cfg c =
  let cfg =
    match cfg with Some v -> v | None -> default_cfg ~net:(Sim.net_of c)
  in
  if cfg.rt_backoff < 1.0 then invalid_arg "Reliable.create: backoff < 1";
  if cfg.rt_timeout <= 0.0 then invalid_arg "Reliable.create: timeout <= 0";
  {
    c;
    cfg;
    send_seq = Hashtbl.create 8;
    unacked = Hashtbl.create 16;
    recv_next = Hashtbl.create 8;
    recv_buf = Hashtbl.create 16;
    n_retransmits = 0;
    n_dup = 0;
    n_cksum = 0;
    n_acks = 0;
  }

let stats t =
  {
    rl_retransmits = t.n_retransmits;
    rl_dup_suppressed = t.n_dup;
    rl_checksum_failures = t.n_cksum;
    rl_acks = t.n_acks;
  }

let counter tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl key r;
      r

let ack_tag t tag = tag + t.cfg.rt_ack_tag_base

(* FNV-1a over the sequence number and the payload's IEEE bit patterns,
   truncated to 53 bits so the checksum is an exact integer-valued float
   (bit-flips in the stored checksum itself then always mismatch). *)
let checksum_env ~seq env ~off =
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h x) 0x100000001b3L in
  mix (Int64.of_int seq);
  for i = off to Array.length env - 1 do
    mix (Int64.bits_of_float env.(i))
  done;
  Int64.to_float (Int64.shift_right_logical !h 11)

(* [Some seq] iff well-formed and the checksum verifies *)
let decode env =
  if Array.length env < 2 then None
  else
    let seqf = env.(0) in
    if (not (Float.is_integer seqf)) || seqf < 0.0 || seqf > 1e15 then None
    else
      let seq = int_of_float seqf in
      if env.(1) = checksum_env ~seq env ~off:2 then Some seq else None

let process_ack t ~dest ~tag env =
  match decode env with
  | Some seq ->
      if Hashtbl.mem t.unacked (dest, tag, seq) then begin
        Hashtbl.remove t.unacked (dest, tag, seq);
        t.n_acks <- t.n_acks + 1
      end
  | None -> t.n_cksum <- t.n_cksum + 1

(* consume every ack that has already arrived, without blocking *)
let drain_acks t =
  let streams =
    Hashtbl.fold (fun (d, tg, _) _ acc -> (d, tg) :: acc) t.unacked []
    |> List.sort_uniq compare
  in
  List.iter
    (fun (d, tg) ->
      let rec go () =
        match Sim.try_recv t.c ~src:d ~tag:(ack_tag t tg) with
        | Some env ->
            process_ack t ~dest:d ~tag:tg env;
            go ()
        | None -> ()
      in
      go ())
    streams

let retransmit_all t =
  let pending =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.unacked []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((dest, tag, seq), env) ->
      t.n_retransmits <- t.n_retransmits + 1;
      (match Sim.tracer_of t.c with
      | Some tr ->
          let now = Sim.time t.c in
          Trace.record tr ~rank:(Sim.rank t.c) ~t0:now ~t1:now
            (Trace.Retransmit { dest; tag; seq })
      | None -> ());
      Sim.send t.c ~dest ~tag env)
    pending

let send t ~dest ~tag payload =
  drain_acks t;
  let sr = counter t.send_seq (dest, tag) in
  let seq = !sr in
  incr sr;
  let n = Array.length payload in
  let env = Array.make (2 + n) 0.0 in
  env.(0) <- float_of_int seq;
  Array.blit payload 0 env 2 n;
  env.(1) <- checksum_env ~seq env ~off:2;
  Hashtbl.replace t.unacked (dest, tag, seq) env;
  Sim.send t.c ~dest ~tag env

let send_ack t ~src ~tag ~seq =
  let env = Array.make 2 0.0 in
  env.(0) <- float_of_int seq;
  env.(1) <- checksum_env ~seq env ~off:2;
  Sim.send t.c ~dest:src ~tag:(ack_tag t tag) env

let process_data t ~src ~tag env =
  match decode env with
  | None -> t.n_cksum <- t.n_cksum + 1
  | Some seq ->
      let next = counter t.recv_next (src, tag) in
      if seq < !next || Hashtbl.mem t.recv_buf (src, tag, seq) then begin
        (* already delivered or already buffered: the peer retransmitted
           because our ack was lost — suppress, but ack again *)
        t.n_dup <- t.n_dup + 1;
        send_ack t ~src ~tag ~seq
      end
      else begin
        Hashtbl.replace t.recv_buf (src, tag, seq)
          (Array.sub env 2 (Array.length env - 2));
        send_ack t ~src ~tag ~seq
      end

let take_buffered t ~src ~tag =
  let next = counter t.recv_next (src, tag) in
  match Hashtbl.find_opt t.recv_buf (src, tag, !next) with
  | Some p ->
      Hashtbl.remove t.recv_buf (src, tag, !next);
      incr next;
      Some p
  | None -> None

let recv t ~src ~tag =
  let rec go attempt =
    drain_acks t;
    match take_buffered t ~src ~tag with
    | Some p -> p
    | None ->
        if attempt > t.cfg.rt_max_retries then begin
          (* retries exhausted: one last retransmit, then hand the
             watchdog to the scheduler — a dead peer becomes
             Sim.Timeout with full per-rank diagnostics *)
          retransmit_all t;
          let env = Sim.recv t.c ~src ~tag in
          process_data t ~src ~tag env;
          go attempt
        end
        else begin
          let deadline =
            Sim.time t.c
            +. (t.cfg.rt_timeout
               *. (t.cfg.rt_backoff ** float_of_int attempt))
          in
          match Sim.recv_deadline t.c ~src ~tag ~deadline with
          | Some env ->
              process_data t ~src ~tag env;
              go attempt
          | None ->
              retransmit_all t;
              go (attempt + 1)
        end
  in
  go 0

let flush t =
  (* Bounded: a peer already parked in a collective cannot re-ack until
     it next touches the stream, so after the retries are exhausted the
     remaining envelopes are abandoned — the receiver's dedup keeps
     delivery exactly-once, and a genuinely lost payload surfaces as the
     receiver's own timeout instead. *)
  let rec go attempt =
    drain_acks t;
    if Hashtbl.length t.unacked > 0 then begin
      if attempt > t.cfg.rt_flush_retries then begin
        (* a final volley for receivers that have not reached their recv
           yet, then give up on the acks *)
        retransmit_all t;
        Hashtbl.reset t.unacked
      end
      else begin
        let first =
          Hashtbl.fold
            (fun (d, tg, _) _ acc ->
              match acc with
              | Some best when best <= (d, tg) -> acc
              | _ -> Some (d, tg))
            t.unacked None
        in
        match first with
        | None -> ()
        | Some (dest, tag) -> (
            let before = Hashtbl.length t.unacked in
            let deadline =
              Sim.time t.c
              +. (t.cfg.rt_timeout
                 *. (t.cfg.rt_backoff ** float_of_int attempt))
            in
            match
              Sim.recv_deadline t.c ~src:dest ~tag:(ack_tag t tag) ~deadline
            with
            | Some env ->
                process_ack t ~dest ~tag env;
                go (if Hashtbl.length t.unacked < before then 0 else attempt)
            | None ->
                retransmit_all t;
                go (attempt + 1))
      end
    end
  in
  go 0
