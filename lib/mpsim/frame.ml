type kind = Data | Ack | Nack

type frame = { fr_kind : kind; fr_seq : int; fr_payload : string }

let magic = "ACFD"
let header_len = 4 + 1 + 8 + 4 + 8
let max_payload = 1 lsl 26

let kind_code = function Data -> 0 | Ack -> 1 | Nack -> 2
let kind_of_code = function
  | 0 -> Some Data
  | 1 -> Some Ack
  | 2 -> Some Nack
  | _ -> None

(* FNV-1a 64 over the kind byte, the big-endian sequence and the payload
   (same constants as Job.digest and Reliable's envelope checksum) *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let checksum ~kind ~seq payload =
  let h = ref (fnv_byte fnv_basis (kind_code kind)) in
  for i = 7 downto 0 do
    h := fnv_byte !h ((seq lsr (i * 8)) land 0xff)
  done;
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) payload;
  !h

let encode ~kind ~seq payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 (kind_code kind);
  Bytes.set_int64_be b 5 (Int64.of_int seq);
  Bytes.set_int32_be b 13 (Int32.of_int n);
  Bytes.set_int64_be b 17 (checksum ~kind ~seq payload);
  Bytes.blit_string payload 0 b header_len n;
  b

type reader = {
  mutable rd_buf : Bytes.t;
  mutable rd_pos : int;
  mutable rd_len : int;
  mutable rd_corrupt : int;
}

let reader () =
  { rd_buf = Bytes.create 65536; rd_pos = 0; rd_len = 0; rd_corrupt = 0 }

let reader_corrupt r = r.rd_corrupt

let feed r buf off n =
  if r.rd_pos > 0 then begin
    Bytes.blit r.rd_buf r.rd_pos r.rd_buf 0 (r.rd_len - r.rd_pos);
    r.rd_len <- r.rd_len - r.rd_pos;
    r.rd_pos <- 0
  end;
  if r.rd_len + n > Bytes.length r.rd_buf then begin
    let cap = ref (Bytes.length r.rd_buf) in
    while r.rd_len + n > !cap do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit r.rd_buf 0 nb 0 r.rd_len;
    r.rd_buf <- nb
  end;
  Bytes.blit buf off r.rd_buf r.rd_len n;
  r.rd_len <- r.rd_len + n

let magic_at buf pos =
  Bytes.get buf pos = 'A'
  && Bytes.get buf (pos + 1) = 'C'
  && Bytes.get buf (pos + 2) = 'F'
  && Bytes.get buf (pos + 3) = 'D'

(* first offset >= pos where the magic could (re)start; keeps up to 3
   trailing bytes in case the magic straddles the buffer end *)
let resync r pos =
  let limit = r.rd_len - 4 in
  let i = ref pos in
  while !i <= limit && not (magic_at r.rd_buf !i) do
    incr i
  done;
  r.rd_pos <- min !i (max pos (r.rd_len - 3))

let rec next r =
  let avail = r.rd_len - r.rd_pos in
  if avail < header_len then None
  else if not (magic_at r.rd_buf r.rd_pos) then begin
    (* lost synchronization: count one garbled stretch and scan forward *)
    r.rd_corrupt <- r.rd_corrupt + 1;
    resync r (r.rd_pos + 1);
    next r
  end
  else begin
    let pos = r.rd_pos in
    let code = Bytes.get_uint8 r.rd_buf (pos + 4) in
    let seq = Int64.to_int (Bytes.get_int64_be r.rd_buf (pos + 5)) in
    let plen = Int32.to_int (Bytes.get_int32_be r.rd_buf (pos + 13)) in
    match kind_of_code code with
    | None ->
        (* header damaged where the length lives: length untrustworthy,
           skip one byte and resynchronize *)
        r.rd_corrupt <- r.rd_corrupt + 1;
        resync r (pos + 1);
        next r
    | Some _ when plen < 0 || plen > max_payload ->
        r.rd_corrupt <- r.rd_corrupt + 1;
        resync r (pos + 1);
        next r
    | Some kind ->
        if avail < header_len + plen then None
        else begin
          let stored = Bytes.get_int64_be r.rd_buf (pos + 17) in
          let payload =
            Bytes.sub_string r.rd_buf (pos + header_len) plen
          in
          (* framing is intact either way: consume the whole frame *)
          r.rd_pos <- pos + header_len + plen;
          if stored = checksum ~kind ~seq payload then
            Some { fr_kind = kind; fr_seq = seq; fr_payload = payload }
          else begin
            r.rd_corrupt <- r.rd_corrupt + 1;
            next r
          end
        end
  end

exception Closed

type chaos = { ch_seed : int; ch_corrupt : float; ch_duplicate : float }

type pending = {
  mutable p_last : float;
  mutable p_attempts : int;
  p_seq : int;
  p_payload : string;
}

type conn = {
  cn_fd : Unix.file_descr;
  cn_rd : reader;
  cn_lock : Mutex.t;
  cn_rto : float;
  cn_chaos : chaos option;
  mutable cn_rng : int;
  mutable cn_send_seq : int;
  mutable cn_recv_next : int;
  cn_unacked : (int, pending) Hashtbl.t;
  cn_ooo : (int, string) Hashtbl.t;
  mutable cn_sent : int;
  mutable cn_delivered : int;
  mutable cn_retransmits : int;
  mutable cn_dup : int;
  mutable cn_closed : bool;
  cn_chunk : Bytes.t;
}

let conn ?chaos ?(rto = 0.2) fd =
  {
    cn_fd = fd;
    cn_rd = reader ();
    cn_lock = Mutex.create ();
    cn_rto = rto;
    cn_chaos = chaos;
    cn_rng =
      (match chaos with
      | Some c -> (c.ch_seed lor 1) land max_int
      | None -> 1);
    cn_send_seq = 0;
    cn_recv_next = 0;
    cn_unacked = Hashtbl.create 16;
    cn_ooo = Hashtbl.create 16;
    cn_sent = 0;
    cn_delivered = 0;
    cn_retransmits = 0;
    cn_dup = 0;
    cn_closed = false;
    cn_chunk = Bytes.create 65536;
  }

let fd c = c.cn_fd

(* deterministic xorshift stream in [0, 1) for chaos decisions *)
let rng01 c =
  let s = c.cn_rng in
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) land max_int in
  c.cn_rng <- (if s = 0 then 0x9e3779b9 else s);
  float_of_int (c.cn_rng land 0xFFFFFF) /. 16777216.0

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with
      | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        raise Closed
    in
    write_all fd b (off + n) (len - n)
  end

(* under [cn_lock] *)
let write_frame c frame = write_all c.cn_fd frame 0 (Bytes.length frame)

(* a fresh data frame goes through the chaos harness; everything else
   (control frames, retransmissions) is sent clean *)
let write_fresh c frame =
  match c.cn_chaos with
  | None -> write_frame c frame
  | Some ch ->
      let dup = rng01 c < ch.ch_duplicate in
      if rng01 c < ch.ch_corrupt then begin
        (* flip one byte at or after the checksum field: the magic, kind
           and length survive, so stream framing is preserved and the
           receiver drops exactly this frame *)
        let mangled = Bytes.copy frame in
        let span = Bytes.length frame - 17 in
        let off = 17 + int_of_float (rng01 c *. float_of_int span) in
        let off = min off (Bytes.length frame - 1) in
        Bytes.set_uint8 mangled off (Bytes.get_uint8 frame off lxor 0x5a);
        write_frame c mangled
      end
      else write_frame c frame;
      if dup then write_frame c frame

let send c payload =
  Mutex.protect c.cn_lock (fun () ->
      if c.cn_closed then raise Closed;
      let seq = c.cn_send_seq in
      c.cn_send_seq <- seq + 1;
      Hashtbl.replace c.cn_unacked seq
        {
          p_last = Unix.gettimeofday ();
          p_attempts = 0;
          p_seq = seq;
          p_payload = payload;
        };
      c.cn_sent <- c.cn_sent + 1;
      write_fresh c (encode ~kind:Data ~seq payload))

let send_ctrl c kind seq =
  Mutex.protect c.cn_lock (fun () ->
      if not c.cn_closed then write_frame c (encode ~kind ~seq ""))

let unacked_sorted c =
  Hashtbl.fold (fun _ p acc -> p :: acc) c.cn_unacked []
  |> List.sort (fun a b -> compare a.p_seq b.p_seq)

let retransmit c p =
  p.p_last <- Unix.gettimeofday ();
  p.p_attempts <- p.p_attempts + 1;
  c.cn_retransmits <- c.cn_retransmits + 1;
  write_frame c (encode ~kind:Data ~seq:p.p_seq p.p_payload)

let handle_ack c seq =
  Mutex.protect c.cn_lock (fun () ->
      List.iter
        (fun p -> if p.p_seq <= seq then Hashtbl.remove c.cn_unacked p.p_seq)
        (unacked_sorted c))

let handle_nack c seq =
  Mutex.protect c.cn_lock (fun () ->
      List.iter
        (fun p -> if p.p_seq >= seq then retransmit c p)
        (unacked_sorted c))

let pump c =
  let n =
    try Unix.read c.cn_fd c.cn_chunk 0 (Bytes.length c.cn_chunk)
    with Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> 0
  in
  if n = 0 then begin
    c.cn_closed <- true;
    raise Closed
  end;
  feed c.cn_rd c.cn_chunk 0 n;
  let corrupt0 = c.cn_rd.rd_corrupt in
  let delivered = ref [] in
  let progressed = ref false in
  let rec drain () =
    match next c.cn_rd with
    | None -> ()
    | Some { fr_kind = Ack; fr_seq; _ } ->
        handle_ack c fr_seq;
        drain ()
    | Some { fr_kind = Nack; fr_seq; _ } ->
        handle_nack c fr_seq;
        drain ()
    | Some { fr_kind = Data; fr_seq; fr_payload } ->
        if fr_seq < c.cn_recv_next then c.cn_dup <- c.cn_dup + 1
        else if fr_seq = c.cn_recv_next then begin
          delivered := fr_payload :: !delivered;
          c.cn_recv_next <- c.cn_recv_next + 1;
          progressed := true;
          let continue = ref true in
          while !continue do
            match Hashtbl.find_opt c.cn_ooo c.cn_recv_next with
            | Some payload ->
                Hashtbl.remove c.cn_ooo c.cn_recv_next;
                delivered := payload :: !delivered;
                c.cn_recv_next <- c.cn_recv_next + 1
            | None -> continue := false
          done
        end
        else if Hashtbl.mem c.cn_ooo fr_seq then c.cn_dup <- c.cn_dup + 1
        else Hashtbl.replace c.cn_ooo fr_seq fr_payload;
        drain ()
  in
  drain ();
  let out = List.rev !delivered in
  c.cn_delivered <- c.cn_delivered + List.length out;
  (* cumulative ack for everything now contiguous; a gap (out-of-order
     stash or a dropped corrupt frame) asks for retransmission instead *)
  if !progressed && Hashtbl.length c.cn_ooo = 0 then
    send_ctrl c Ack (c.cn_recv_next - 1)
  else if
    Hashtbl.length c.cn_ooo > 0 || c.cn_rd.rd_corrupt > corrupt0
  then
    send_ctrl c Nack c.cn_recv_next;
  out

let tick c =
  Mutex.protect c.cn_lock (fun () ->
      if not c.cn_closed then begin
        let now = Unix.gettimeofday () in
        List.iter
          (fun p ->
            let backoff =
              c.cn_rto *. (2.0 ** float_of_int (min p.p_attempts 6))
            in
            if now -. p.p_last >= backoff then retransmit c p)
          (unacked_sorted c)
      end)

type stats = {
  cs_sent : int;
  cs_delivered : int;
  cs_retransmits : int;
  cs_dup_suppressed : int;
  cs_corrupt : int;
}

let stats c =
  {
    cs_sent = c.cn_sent;
    cs_delivered = c.cn_delivered;
    cs_retransmits = c.cn_retransmits;
    cs_dup_suppressed = c.cn_dup;
    cs_corrupt = c.cn_rd.rd_corrupt;
  }

let close c =
  Mutex.protect c.cn_lock (fun () ->
      if not c.cn_closed then begin
        c.cn_closed <- true;
        try Unix.close c.cn_fd with Unix.Unix_error _ -> ()
      end)
