module Trace = Autocfd_obs.Trace

exception Deadlock of string
exception Timeout of string
exception Rank_failure of int * exn

type red_op = [ `Max | `Min | `Sum ]

let red_op_name = function `Max -> "max" | `Min -> "min" | `Sum -> "sum"

type message = { arrival : float; data : float array }

type _ Effect.t +=
  | E_recv : int * int -> float array Effect.t
  | E_recv_t : int * int * float -> float array option Effect.t
  | E_barrier : unit Effect.t
  | E_allreduce : red_op * float -> float Effect.t
  | E_bcast : int * float array option -> float array Effect.t
  | E_halt : unit Effect.t

type status =
  | Not_started
  | Running  (** transient, while its continuation is on the OCaml stack *)
  | Done
  | Crashed  (** halted by an injected fault; its fiber was abandoned *)
  | W_recv of int * int * (float array, unit) Effect.Deep.continuation
  | W_recv_t of
      int * int * float * (float array option, unit) Effect.Deep.continuation
      (** like [W_recv] plus a deadline after which [None] is delivered *)
  | W_barrier of (unit, unit) Effect.Deep.continuation
  | W_allred of red_op * float * (float, unit) Effect.Deep.continuation
  | W_bcast of
      int * float array option * (float array, unit) Effect.Deep.continuation

type state = {
  n : int;
  net : Netmodel.t;
  times : float array;
  status : status array;
  mailboxes : (int * int * int, message Queue.t) Hashtbl.t;
      (** (dest, src, tag) -> queue *)
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
  rank_sends : int array;
  rank_recvs : int array;
  rank_blocked : float array;
  tracer : Trace.t option;
  faults : Fault.plan option;
}

type comm = { id : int; st : state }

let rank c = c.id
let nranks c = c.st.n
let time c = c.st.times.(c.id)
let tracer_of c = c.st.tracer
let net_of c = c.st.net

let trace_fault c ~what ~peer ~dur =
  match c.st.tracer with
  | Some tr ->
      let t = c.st.times.(c.id) in
      Trace.record tr ~rank:c.id ~t0:(t -. dur) ~t1:t
        (Trace.Fault { what; peer })
  | None -> ()

(* Check the rank's stall/crash triggers.  A stall silently advances the
   rank's clock (a straggler pause); a crash abandons the fiber via
   [E_halt], leaving every in-flight message it owed other ranks
   undelivered. *)
let op_check c ~is_op =
  match c.st.faults with
  | None -> ()
  | Some plan -> (
      match Fault.on_op plan ~rank:c.id ~time:c.st.times.(c.id) ~is_op with
      | Fault.Op_none -> ()
      | Fault.Op_stall d ->
          c.st.times.(c.id) <- c.st.times.(c.id) +. d;
          c.st.rank_blocked.(c.id) <- c.st.rank_blocked.(c.id) +. d;
          trace_fault c ~what:"stall" ~peer:(-1) ~dur:d
      | Fault.Op_crash ->
          trace_fault c ~what:"crash" ~peer:(-1) ~dur:0.0;
          Effect.perform E_halt)

let advance c dt =
  let t0 = c.st.times.(c.id) in
  c.st.times.(c.id) <- t0 +. dt;
  (match c.st.tracer with
  | Some tr when dt <> 0.0 ->
      Trace.record tr ~rank:c.id ~t0 ~t1:(t0 +. dt) Trace.Compute
  | _ -> ());
  op_check c ~is_op:false

let mailbox st key =
  match Hashtbl.find_opt st.mailboxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace st.mailboxes key q;
      q

let send c ~dest ~tag data =
  let st = c.st in
  if dest < 0 || dest >= st.n then invalid_arg "Sim.send: bad destination";
  op_check c ~is_op:true;
  let t0 = st.times.(c.id) in
  st.times.(c.id) <- t0 +. st.net.Netmodel.send_overhead;
  let bytes = 8 * Array.length data in
  let verdict =
    match st.faults with
    | None -> Fault.clean_verdict
    | Some p -> Fault.on_send p ~src:c.id ~dest ~words:(Array.length data)
  in
  let arrival =
    st.times.(c.id)
    +. (Netmodel.message_time st.net ~bytes *. verdict.Fault.sv_factor)
    +. verdict.Fault.sv_delay
  in
  st.messages <- st.messages + 1;
  st.bytes <- st.bytes + bytes;
  st.rank_sends.(c.id) <- st.rank_sends.(c.id) + 1;
  (match st.tracer with
  | Some tr ->
      Trace.record tr ~rank:c.id ~t0 ~t1:st.times.(c.id)
        (Trace.Send { dest; tag; bytes })
  | None -> ());
  if verdict.Fault.sv_drop then trace_fault c ~what:"loss" ~peer:dest ~dur:0.0
  else begin
    let payload = Array.copy data in
    (match verdict.Fault.sv_corrupt with
    | Some (w, b) when w < Array.length payload ->
        payload.(w) <-
          Int64.float_of_bits
            (Int64.logxor
               (Int64.bits_of_float payload.(w))
               (Int64.shift_left 1L b));
        trace_fault c ~what:"corrupt" ~peer:dest ~dur:0.0
    | _ -> ());
    let q = mailbox st (dest, c.id, tag) in
    let msg = { arrival; data = payload } in
    if verdict.Fault.sv_reorder && Queue.length q > 0 then begin
      (* adversarial delivery shuffle: the fresh message overtakes the
         one queued just before it, so the receiver pops them swapped *)
      let items = List.rev (Queue.fold (fun acc m -> m :: acc) [] q) in
      Queue.clear q;
      let rec repush = function
        | [ last ] ->
            Queue.push msg q;
            Queue.push last q
        | earlier :: rest ->
            Queue.push earlier q;
            repush rest
        | [] -> Queue.push msg q
      in
      repush items;
      trace_fault c ~what:"reorder" ~peer:dest ~dur:0.0
    end
    else Queue.push msg q;
    if verdict.Fault.sv_duplicate then begin
      (* the duplicate trails the original by one degraded latency, so
         queue order stays FIFO by arrival *)
      Queue.push
        {
          arrival =
            arrival +. (st.net.Netmodel.latency *. verdict.Fault.sv_factor);
          data = Array.copy payload;
        }
        q;
      st.messages <- st.messages + 1;
      st.bytes <- st.bytes + bytes;
      trace_fault c ~what:"duplicate" ~peer:dest ~dur:0.0
    end
  end

let recv c ~src ~tag =
  if src < 0 || src >= c.st.n then invalid_arg "Sim.recv: bad source";
  op_check c ~is_op:true;
  Effect.perform (E_recv (src, tag))

let recv_deadline c ~src ~tag ~deadline =
  if src < 0 || src >= c.st.n then invalid_arg "Sim.recv_deadline: bad source";
  op_check c ~is_op:true;
  Effect.perform (E_recv_t (src, tag, deadline))

(* Nonblocking probe: deliver only a message that has already arrived on
   the rank's virtual clock.  Never blocks, never advances time past the
   recv overhead. *)
let try_recv c ~src ~tag =
  if src < 0 || src >= c.st.n then invalid_arg "Sim.try_recv: bad source";
  op_check c ~is_op:false;
  let st = c.st in
  match Hashtbl.find_opt st.mailboxes (c.id, src, tag) with
  | Some q when not (Queue.is_empty q) ->
      let now = st.times.(c.id) in
      if (Queue.peek q).arrival <= now then begin
        let msg = Queue.pop q in
        let t1 = now +. st.net.Netmodel.recv_overhead in
        st.times.(c.id) <- t1;
        st.rank_recvs.(c.id) <- st.rank_recvs.(c.id) + 1;
        (match st.tracer with
        | Some tr ->
            Trace.record tr ~rank:c.id ~t0:now ~t1
              (Trace.Recv { src; tag; bytes = 8 * Array.length msg.data })
        | None -> ());
        Some msg.data
      end
      else None
  | _ -> None

type request =
  | R_send of { dest : int; tag : int; mutable done_ : bool }
  | R_recv of { src : int; tag : int; mutable done_ : bool }

let isend c ~dest ~tag data =
  send c ~dest ~tag data;
  R_send { dest; tag; done_ = false }

let irecv _c ~src ~tag = R_recv { src; tag; done_ = false }

let wait c req =
  match req with
  | R_send r ->
      if r.done_ then
        invalid_arg
          (Printf.sprintf
             "Sim.wait: send(dest=%d, tag=%d) request already completed"
             r.dest r.tag);
      r.done_ <- true;
      [||]
  | R_recv r ->
      if r.done_ then
        invalid_arg
          (Printf.sprintf
             "Sim.wait: recv(src=%d, tag=%d) request already completed" r.src
             r.tag);
      r.done_ <- true;
      recv c ~src:r.src ~tag:r.tag

let waitall c reqs = List.map (wait c) reqs

let sendrecv c ~dest ~send_tag data ~src ~recv_tag =
  send c ~dest ~tag:send_tag data;
  recv c ~src ~tag:recv_tag

let barrier c =
  op_check c ~is_op:true;
  Effect.perform E_barrier

let allreduce c op v =
  op_check c ~is_op:true;
  Effect.perform (E_allreduce (op, v))

let bcast c ~root data =
  op_check c ~is_op:true;
  Effect.perform (E_bcast (root, if c.id = root then Some data else None))

type stats = {
  elapsed : float;
  rank_times : float array;
  messages : int;
  bytes : int;
  collectives : int;
  rank_sends : int array;
  rank_recvs : int array;
  rank_blocked : float array;
}

let collective_cost st ~bytes =
  let stages =
    int_of_float (Float.round (ceil (Float.log2 (float_of_int (max 2 st.n)))))
  in
  float_of_int stages *. Netmodel.message_time st.net ~bytes

let run ?(net = Netmodel.fast) ?tracer ?faults ~nranks body =
  if nranks < 1 then invalid_arg "Sim.run: nranks must be >= 1";
  (match tracer with Some tr -> Trace.prepare tr ~nranks | None -> ());
  (match faults with Some p -> Fault.begin_run p | None -> ());
  let st =
    {
      n = nranks;
      net;
      times = Array.make nranks 0.0;
      status = Array.make nranks Not_started;
      mailboxes = Hashtbl.create 64;
      messages = 0;
      bytes = 0;
      collectives = 0;
      rank_sends = Array.make nranks 0;
      rank_recvs = Array.make nranks 0;
      rank_blocked = Array.make nranks 0.0;
      tracer;
      faults;
    }
  in
  let handler i =
    let open Effect.Deep in
    {
      retc = (fun () -> st.status.(i) <- Done);
      exnc = (fun e -> raise (Rank_failure (i, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_recv (src, tag) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_recv (src, tag, k))
          | E_recv_t (src, tag, deadline) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_recv_t (src, tag, deadline, k))
          | E_barrier ->
              Some (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_barrier k)
          | E_allreduce (op, v) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_allred (op, v, k))
          | E_bcast (root, data) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_bcast (root, data, k))
          | E_halt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore k;
                  st.status.(i) <- Crashed)
          | _ -> None);
    }
  in
  let start i =
    let c = { id = i; st } in
    st.status.(i) <- Running;
    Effect.Deep.match_with body c (handler i)
  in
  let deliver i ~src ~tag msg k =
    let t0 = st.times.(i) in
    let arrive = Float.max t0 msg.arrival in
    let t1 = arrive +. net.Netmodel.recv_overhead in
    st.times.(i) <- t1;
    st.rank_recvs.(i) <- st.rank_recvs.(i) + 1;
    st.rank_blocked.(i) <- st.rank_blocked.(i) +. (arrive -. t0);
    (match st.tracer with
    | Some tr ->
        if arrive > t0 then
          Trace.record tr ~rank:i ~t0 ~t1:arrive (Trace.Blocked { src; tag });
        Trace.record tr ~rank:i ~t0:arrive ~t1
          (Trace.Recv { src; tag; bytes = 8 * Array.length msg.data })
    | None -> ());
    st.status.(i) <- Running;
    k msg.data
  in
  (* resume a deadline-receive with [None]: the rank idled until its
     deadline and the watchdog hands control back empty-handed *)
  let fire_deadline i ~src ~tag ~deadline k =
    let t0 = st.times.(i) in
    let t1 = Float.max t0 deadline in
    st.times.(i) <- t1;
    st.rank_blocked.(i) <- st.rank_blocked.(i) +. (t1 -. t0);
    (match st.tracer with
    | Some tr when t1 > t0 ->
        Trace.record tr ~rank:i ~t0 ~t1 (Trace.Blocked { src; tag })
    | _ -> ());
    st.status.(i) <- Running;
    Effect.Deep.continue k None
  in
  let try_deliver i =
    match st.status.(i) with
    | W_recv (src, tag, k) -> (
        match Hashtbl.find_opt st.mailboxes (i, src, tag) with
        | Some q when not (Queue.is_empty q) ->
            let msg = Queue.pop q in
            deliver i ~src ~tag msg (Effect.Deep.continue k);
            true
        | _ -> false)
    | W_recv_t (src, tag, deadline, k) -> (
        match Hashtbl.find_opt st.mailboxes (i, src, tag) with
        | Some q when not (Queue.is_empty q) ->
            if (Queue.peek q).arrival <= deadline then begin
              let msg = Queue.pop q in
              deliver i ~src ~tag msg (fun d ->
                  Effect.Deep.continue k (Some d));
              true
            end
            else begin
              (* the queued message cannot make the deadline: time out
                 now rather than waiting for a global stall *)
              fire_deadline i ~src ~tag ~deadline k;
              true
            end
        | _ -> false)
    | _ -> false
  in
  (* advance every clock to the collective's completion time, attributing
     the assembly wait as blocked-idle and the cost itself as comm *)
  let collective_advance ~op ~bytes ~cost =
    let tmax = Array.fold_left Float.max 0.0 st.times in
    let t = tmax +. cost in
    Array.iteri
      (fun i ti ->
        st.rank_blocked.(i) <- st.rank_blocked.(i) +. Float.max 0.0 (tmax -. ti);
        match st.tracer with
        | Some tr ->
            if tmax > ti then
              Trace.record tr ~rank:i ~t0:ti ~t1:tmax
                (Trace.Blocked { src = -1; tag = -1 });
            Trace.record tr ~rank:i ~t0:tmax ~t1:t
              (Trace.Collective { op; bytes })
        | None -> ())
      st.times;
    Array.fill st.times 0 st.n t;
    st.collectives <- st.collectives + 1
  in
  let describe () =
    let b = Buffer.create 128 in
    Array.iteri
      (fun i s ->
        let d =
          match s with
          | Not_started -> "not started"
          | Running -> "running"
          | Done -> "done"
          | Crashed -> Printf.sprintf "crashed at t=%.9g" st.times.(i)
          | W_recv (src, tag, _) ->
              Printf.sprintf "blocked on recv(src=%d, tag=%d) at t=%.9g" src
                tag st.times.(i)
          | W_recv_t (src, tag, deadline, _) ->
              Printf.sprintf
                "blocked on recv(src=%d, tag=%d, deadline=%.9g) at t=%.9g" src
                tag deadline st.times.(i)
          | W_barrier _ ->
              Printf.sprintf "blocked in barrier at t=%.9g" st.times.(i)
          | W_allred (op, _, _) ->
              Printf.sprintf "blocked in allreduce(%s) at t=%.9g"
                (red_op_name op) st.times.(i)
          | W_bcast (root, _, _) ->
              Printf.sprintf "blocked in bcast(root=%d) at t=%.9g" root
                st.times.(i)
        in
        Buffer.add_string b (Printf.sprintf "rank %d: %s; " i d))
      st.status;
    Buffer.contents b
  in
  (* resolve a collective when every rank has arrived at a compatible one *)
  let try_collective () =
    let all pred = Array.for_all pred st.status in
    if all (function W_barrier _ -> true | _ -> false) then begin
      collective_advance ~op:"barrier" ~bytes:8
        ~cost:(collective_cost st ~bytes:8);
      let ks =
        Array.map
          (function W_barrier k -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k ()) ks;
      true
    end
    else if all (function W_allred _ -> true | _ -> false) then begin
      let op0 =
        match st.status.(0) with W_allred (op, _, _) -> op | _ -> assert false
      in
      let compatible =
        all (function W_allred (op, _, _) -> op = op0 | _ -> false)
      in
      if not compatible then
        raise
          (Deadlock ("allreduce with mismatched operations: " ^ describe ()));
      let combine a b =
        match op0 with
        | `Max -> Float.max a b
        | `Min -> Float.min a b
        | `Sum -> a +. b
      in
      let value =
        Array.fold_left
          (fun acc s ->
            match s with
            | W_allred (_, v, _) -> (
                match acc with None -> Some v | Some a -> Some (combine a v))
            | _ -> acc)
          None st.status
      in
      let value = Option.get value in
      collective_advance ~op:"allreduce" ~bytes:8
        ~cost:(2.0 *. collective_cost st ~bytes:8);
      let ks =
        Array.map
          (function W_allred (_, _, k) -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k value) ks;
      true
    end
    else if all (function W_bcast _ -> true | _ -> false) then begin
      let root0 =
        match st.status.(0) with W_bcast (r, _, _) -> r | _ -> assert false
      in
      if not (all (function W_bcast (r, _, _) -> r = root0 | _ -> false)) then
        raise (Deadlock ("bcast with mismatched roots: " ^ describe ()));
      let data =
        match st.status.(root0) with
        | W_bcast (_, Some d, _) -> d
        | _ -> raise (Deadlock ("bcast root provided no data: " ^ describe ()))
      in
      let bytes = 8 * Array.length data in
      collective_advance ~op:"bcast" ~bytes
        ~cost:(collective_cost st ~bytes);
      let ks =
        Array.map
          (function W_bcast (_, _, k) -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k (Array.copy data)) ks;
      true
    end
    else false
  in
  let all_done () = Array.for_all (fun s -> s = Done) st.status in
  (* when nothing else can move, let the earliest-deadline watchdog fire
     (lowest rank on ties, so scheduling stays deterministic) *)
  let fire_earliest_deadline () =
    let best = ref None in
    Array.iteri
      (fun i s ->
        match s with
        | W_recv_t (_, _, d, _) -> (
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (i, d))
        | _ -> ())
      st.status;
    match !best with
    | None -> false
    | Some (i, _) -> (
        match st.status.(i) with
        | W_recv_t (src, tag, deadline, k) ->
            fire_deadline i ~src ~tag ~deadline k;
            true
        | _ -> assert false)
  in
  while not (all_done ()) do
    let progressed = ref false in
    for i = 0 to st.n - 1 do
      match st.status.(i) with
      | Not_started ->
          start i;
          progressed := true
      | _ -> if try_deliver i then progressed := true
    done;
    if try_collective () then progressed := true;
    if (not !progressed) && not (all_done ()) then
      if fire_earliest_deadline () then ()
      else begin
        let crashed = Array.exists (fun s -> s = Crashed) st.status in
        let faulty =
          match st.faults with Some p -> Fault.any_fired p | None -> false
        in
        let msg = "no progress possible: " ^ describe () in
        if crashed || faulty then raise (Timeout msg)
        else raise (Deadlock msg)
      end
  done;
  {
    elapsed = Array.fold_left Float.max 0.0 st.times;
    rank_times = Array.copy st.times;
    messages = st.messages;
    bytes = st.bytes;
    collectives = st.collectives;
    rank_sends = Array.copy st.rank_sends;
    rank_recvs = Array.copy st.rank_recvs;
    rank_blocked = Array.copy st.rank_blocked;
  }
