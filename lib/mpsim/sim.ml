module Trace = Autocfd_obs.Trace

exception Deadlock of string
exception Rank_failure of int * exn

type red_op = [ `Max | `Min | `Sum ]

type message = { arrival : float; data : float array }

type _ Effect.t +=
  | E_recv : int * int -> float array Effect.t
  | E_barrier : unit Effect.t
  | E_allreduce : red_op * float -> float Effect.t
  | E_bcast : int * float array option -> float array Effect.t

type status =
  | Not_started
  | Running  (** transient, while its continuation is on the OCaml stack *)
  | Done
  | W_recv of int * int * (float array, unit) Effect.Deep.continuation
  | W_barrier of (unit, unit) Effect.Deep.continuation
  | W_allred of red_op * float * (float, unit) Effect.Deep.continuation
  | W_bcast of
      int * float array option * (float array, unit) Effect.Deep.continuation

type state = {
  n : int;
  net : Netmodel.t;
  times : float array;
  status : status array;
  mailboxes : (int * int * int, message Queue.t) Hashtbl.t;
      (** (dest, src, tag) -> queue *)
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
  rank_sends : int array;
  rank_recvs : int array;
  rank_blocked : float array;
  tracer : Trace.t option;
}

type comm = { id : int; st : state }

let rank c = c.id
let nranks c = c.st.n
let time c = c.st.times.(c.id)

let advance c dt =
  let t0 = c.st.times.(c.id) in
  c.st.times.(c.id) <- t0 +. dt;
  match c.st.tracer with
  | Some tr when dt <> 0.0 ->
      Trace.record tr ~rank:c.id ~t0 ~t1:(t0 +. dt) Trace.Compute
  | _ -> ()

let send c ~dest ~tag data =
  let st = c.st in
  if dest < 0 || dest >= st.n then invalid_arg "Sim.send: bad destination";
  let t0 = st.times.(c.id) in
  st.times.(c.id) <- t0 +. st.net.Netmodel.send_overhead;
  let bytes = 8 * Array.length data in
  let arrival =
    st.times.(c.id) +. Netmodel.message_time st.net ~bytes
  in
  let key = (dest, c.id, tag) in
  let q =
    match Hashtbl.find_opt st.mailboxes key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace st.mailboxes key q;
        q
  in
  Queue.push { arrival; data = Array.copy data } q;
  st.messages <- st.messages + 1;
  st.bytes <- st.bytes + bytes;
  st.rank_sends.(c.id) <- st.rank_sends.(c.id) + 1;
  match st.tracer with
  | Some tr ->
      Trace.record tr ~rank:c.id ~t0 ~t1:st.times.(c.id)
        (Trace.Send { dest; tag; bytes })
  | None -> ()

let recv c ~src ~tag =
  if src < 0 || src >= c.st.n then invalid_arg "Sim.recv: bad source";
  Effect.perform (E_recv (src, tag))

type request =
  | R_send
  | R_recv of { src : int; tag : int; mutable done_ : bool }

let isend c ~dest ~tag data =
  send c ~dest ~tag data;
  R_send

let irecv _c ~src ~tag = R_recv { src; tag; done_ = false }

let wait c req =
  match req with
  | R_send -> [||]
  | R_recv r ->
      if r.done_ then invalid_arg "Sim.wait: request already completed";
      r.done_ <- true;
      recv c ~src:r.src ~tag:r.tag

let waitall c reqs = List.map (wait c) reqs

let sendrecv c ~dest ~send_tag data ~src ~recv_tag =
  send c ~dest ~tag:send_tag data;
  recv c ~src ~tag:recv_tag

let barrier _c = Effect.perform E_barrier
let allreduce _c op v = Effect.perform (E_allreduce (op, v))

let bcast c ~root data =
  Effect.perform (E_bcast (root, if c.id = root then Some data else None))

type stats = {
  elapsed : float;
  rank_times : float array;
  messages : int;
  bytes : int;
  collectives : int;
  rank_sends : int array;
  rank_recvs : int array;
  rank_blocked : float array;
}

let collective_cost st ~bytes =
  let stages =
    int_of_float (Float.round (ceil (Float.log2 (float_of_int (max 2 st.n)))))
  in
  float_of_int stages *. Netmodel.message_time st.net ~bytes

let run ?(net = Netmodel.fast) ?tracer ~nranks body =
  if nranks < 1 then invalid_arg "Sim.run: nranks must be >= 1";
  (match tracer with Some tr -> Trace.prepare tr ~nranks | None -> ());
  let st =
    {
      n = nranks;
      net;
      times = Array.make nranks 0.0;
      status = Array.make nranks Not_started;
      mailboxes = Hashtbl.create 64;
      messages = 0;
      bytes = 0;
      collectives = 0;
      rank_sends = Array.make nranks 0;
      rank_recvs = Array.make nranks 0;
      rank_blocked = Array.make nranks 0.0;
      tracer;
    }
  in
  let handler i =
    let open Effect.Deep in
    {
      retc = (fun () -> st.status.(i) <- Done);
      exnc = (fun e -> raise (Rank_failure (i, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_recv (src, tag) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_recv (src, tag, k))
          | E_barrier ->
              Some (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_barrier k)
          | E_allreduce (op, v) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_allred (op, v, k))
          | E_bcast (root, data) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.status.(i) <- W_bcast (root, data, k))
          | _ -> None);
    }
  in
  let start i =
    let c = { id = i; st } in
    st.status.(i) <- Running;
    Effect.Deep.match_with body c (handler i)
  in
  let try_deliver i =
    match st.status.(i) with
    | W_recv (src, tag, k) -> (
        match Hashtbl.find_opt st.mailboxes (i, src, tag) with
        | Some q when not (Queue.is_empty q) ->
            let msg = Queue.pop q in
            let t0 = st.times.(i) in
            let arrive = Float.max t0 msg.arrival in
            let t1 = arrive +. net.Netmodel.recv_overhead in
            st.times.(i) <- t1;
            st.rank_recvs.(i) <- st.rank_recvs.(i) + 1;
            st.rank_blocked.(i) <- st.rank_blocked.(i) +. (arrive -. t0);
            (match st.tracer with
            | Some tr ->
                if arrive > t0 then
                  Trace.record tr ~rank:i ~t0 ~t1:arrive
                    (Trace.Blocked { src; tag });
                Trace.record tr ~rank:i ~t0:arrive ~t1
                  (Trace.Recv { src; tag; bytes = 8 * Array.length msg.data })
            | None -> ());
            st.status.(i) <- Running;
            Effect.Deep.continue k msg.data;
            true
        | _ -> false)
    | _ -> false
  in
  (* advance every clock to the collective's completion time, attributing
     the assembly wait as blocked-idle and the cost itself as comm *)
  let collective_advance ~op ~bytes ~cost =
    let tmax = Array.fold_left Float.max 0.0 st.times in
    let t = tmax +. cost in
    Array.iteri
      (fun i ti ->
        st.rank_blocked.(i) <- st.rank_blocked.(i) +. Float.max 0.0 (tmax -. ti);
        match st.tracer with
        | Some tr ->
            if tmax > ti then
              Trace.record tr ~rank:i ~t0:ti ~t1:tmax
                (Trace.Blocked { src = -1; tag = -1 });
            Trace.record tr ~rank:i ~t0:tmax ~t1:t
              (Trace.Collective { op; bytes })
        | None -> ())
      st.times;
    Array.fill st.times 0 st.n t;
    st.collectives <- st.collectives + 1
  in
  (* resolve a collective when every rank has arrived at a compatible one *)
  let try_collective () =
    let all pred = Array.for_all pred st.status in
    if all (function W_barrier _ -> true | _ -> false) then begin
      collective_advance ~op:"barrier" ~bytes:8
        ~cost:(collective_cost st ~bytes:8);
      let ks =
        Array.map
          (function W_barrier k -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k ()) ks;
      true
    end
    else if all (function W_allred _ -> true | _ -> false) then begin
      let op0 =
        match st.status.(0) with W_allred (op, _, _) -> op | _ -> assert false
      in
      let compatible =
        all (function W_allred (op, _, _) -> op = op0 | _ -> false)
      in
      if not compatible then
        raise (Deadlock "allreduce with mismatched operations");
      let combine a b =
        match op0 with
        | `Max -> Float.max a b
        | `Min -> Float.min a b
        | `Sum -> a +. b
      in
      let value =
        Array.fold_left
          (fun acc s ->
            match s with
            | W_allred (_, v, _) -> (
                match acc with None -> Some v | Some a -> Some (combine a v))
            | _ -> acc)
          None st.status
      in
      let value = Option.get value in
      collective_advance ~op:"allreduce" ~bytes:8
        ~cost:(2.0 *. collective_cost st ~bytes:8);
      let ks =
        Array.map
          (function W_allred (_, _, k) -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k value) ks;
      true
    end
    else if all (function W_bcast _ -> true | _ -> false) then begin
      let root0 =
        match st.status.(0) with W_bcast (r, _, _) -> r | _ -> assert false
      in
      if not (all (function W_bcast (r, _, _) -> r = root0 | _ -> false)) then
        raise (Deadlock "bcast with mismatched roots");
      let data =
        match st.status.(root0) with
        | W_bcast (_, Some d, _) -> d
        | _ -> raise (Deadlock "bcast root provided no data")
      in
      let bytes = 8 * Array.length data in
      collective_advance ~op:"bcast" ~bytes
        ~cost:(collective_cost st ~bytes);
      let ks =
        Array.map
          (function W_bcast (_, _, k) -> k | _ -> assert false)
          st.status
      in
      Array.iteri (fun i _ -> st.status.(i) <- Running) ks;
      Array.iter (fun k -> Effect.Deep.continue k (Array.copy data)) ks;
      true
    end
    else false
  in
  let all_done () = Array.for_all (fun s -> s = Done) st.status in
  let describe () =
    let b = Buffer.create 128 in
    Array.iteri
      (fun i s ->
        let d =
          match s with
          | Not_started -> "not started"
          | Running -> "running"
          | Done -> "done"
          | W_recv (src, tag, _) ->
              Printf.sprintf "blocked on recv(src=%d, tag=%d) at t=%.9g" src
                tag st.times.(i)
          | W_barrier _ ->
              Printf.sprintf "blocked in barrier at t=%.9g" st.times.(i)
          | W_allred _ ->
              Printf.sprintf "blocked in allreduce at t=%.9g" st.times.(i)
          | W_bcast _ ->
              Printf.sprintf "blocked in bcast at t=%.9g" st.times.(i)
        in
        Buffer.add_string b (Printf.sprintf "rank %d: %s; " i d))
      st.status;
    Buffer.contents b
  in
  while not (all_done ()) do
    let progressed = ref false in
    for i = 0 to st.n - 1 do
      match st.status.(i) with
      | Not_started ->
          start i;
          progressed := true
      | _ -> if try_deliver i then progressed := true
    done;
    if try_collective () then progressed := true;
    if not !progressed && not (all_done ()) then
      raise (Deadlock ("no progress possible: " ^ describe ()))
  done;
  {
    elapsed = Array.fold_left Float.max 0.0 st.times;
    rank_times = Array.copy st.times;
    messages = st.messages;
    bytes = st.bytes;
    collectives = st.collectives;
    rank_sends = Array.copy st.rank_sends;
    rank_recvs = Array.copy st.rank_recvs;
    rank_blocked = Array.copy st.rank_blocked;
  }
