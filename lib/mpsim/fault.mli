(** Deterministic, seeded fault schedules for the simulated cluster.

    A {!spec} describes the failure behaviour of a run: per-message loss,
    duplication and payload bit-corruption probabilities, per-link jitter
    and degradation (a {!Netmodel} perturbation applied to individual
    (src, dest) pairs), transient rank stalls (stragglers) and hard rank
    crashes triggered at a virtual time or at a rank's nth communication
    operation.

    Every verdict is a pure function of [(seed, src, dest, per-link send
    index)] — drawn from a private splitmix/xoshiro stream per message —
    so a fault schedule is exactly reproducible and, crucially,
    independent of scheduling order: injecting faults never perturbs the
    fault-free ordering decisions of {!Sim.run}.

    A {!plan} is the mutable run-state of a spec (per-link send counters,
    per-rank operation counters, one-shot trigger flags, fault counters).
    Crash triggers are one-shot {e across restarts}: {!begin_run} resets
    the counters that index the deterministic draws but keeps crash
    state, so a recovery layer re-running the same plan sees each crash
    exactly once. *)

type trigger =
  | At_time of float  (** fires at the first check at or after this virtual time *)
  | At_op of int  (** fires at the rank's nth communication operation (1-based) *)

type stall_spec = {
  sl_rank : int;
  sl_at : trigger;
  sl_duration : float;  (** virtual seconds the rank goes silent *)
}

type crash_spec = { cr_rank : int; cr_at : trigger }

type spec = {
  fs_seed : int;
  fs_loss : float;  (** probability a message is dropped in flight *)
  fs_duplication : float;  (** probability a message is delivered twice *)
  fs_corruption : float;  (** probability one payload bit is flipped *)
  fs_jitter : float;  (** max uniform extra latency per message, seconds *)
  fs_reorder : float;
      (** probability a message overtakes the one queued just before it
          on the same link, shuffling delivery order at the receiver *)
  fs_degrade : (int * int * float) list;
      (** (src, dest, factor): wire time of that link multiplied by factor *)
  fs_stalls : stall_spec list;
  fs_crashes : crash_spec list;
}

val spec :
  seed:int ->
  ?loss:float ->
  ?duplication:float ->
  ?corruption:float ->
  ?jitter:float ->
  ?reorder:float ->
  ?degrade:(int * int * float) list ->
  ?stalls:stall_spec list ->
  ?crashes:crash_spec list ->
  unit ->
  spec
(** All rates default to 0, all lists to empty.
    @raise Invalid_argument on a probability outside [0, 1] or a negative
    jitter/duration/degradation factor below 1. *)

type plan

val make : spec -> plan
val spec_of : plan -> spec

type counters = {
  fc_drops : int;
  fc_duplicates : int;
  fc_corruptions : int;
  fc_reorders : int;
      (** reorder verdicts drawn; one with no earlier message pending on
          its link is a delivery-order no-op *)
  fc_stalls : int;
  fc_crashes : int;
}

val counters : plan -> counters
(** Cumulative over every run (and restart) of the plan. *)

val crashed_ranks : plan -> int list
(** Ranks whose crash trigger has fired, ascending. *)

val any_fired : plan -> bool
(** Has any fault (of any kind) been injected yet? *)

(** {2 Simulator-facing interface} *)

val begin_run : plan -> unit
(** Reset per-run state (link send indices, rank op counters, stall
    trigger flags) before a fresh {!Sim.run} attempt.  Crash trigger
    flags and the cumulative {!counters} survive, so a crashed rank does
    not crash again when a recovery layer restarts the run. *)

type send_verdict = {
  sv_drop : bool;
  sv_duplicate : bool;  (** deliver a second copy (ignored when dropped) *)
  sv_corrupt : (int * int) option;  (** (word index, bit index) to flip *)
  sv_delay : float;  (** extra seconds of flight time (jitter), >= 0 *)
  sv_reorder : bool;
      (** deliver this message ahead of the previously queued one *)
  sv_factor : float;  (** wire-time multiplier for this link, >= 1 *)
}

val clean_verdict : send_verdict

val on_send : plan -> src:int -> dest:int -> words:int -> send_verdict
(** Draw the fate of the next message on link (src, dest).  Advances the
    link's send index; the verdict is a pure function of the spec seed,
    the link and that index. *)

type op_action =
  | Op_none
  | Op_stall of float  (** pause the rank for this many virtual seconds *)
  | Op_crash  (** the rank halts: its fiber must be abandoned *)

val on_op : plan -> rank:int -> time:float -> is_op:bool -> op_action
(** Check the rank's stall/crash triggers at virtual time [time].
    [is_op] counts the call against the rank's operation counter (true
    for communication operations, false for passive time checks).  At
    most one action is returned per call; a simultaneous crash fires on
    the next check. *)
