(** {!Reliable}'s envelope discipline over real file descriptors.

    {!Reliable} protects messages between {e simulated} ranks; this module
    carries the same guarantees — sequence numbers, FNV-64 checksums,
    retransmission, duplicate suppression, in-order delivery — over an
    actual byte stream (a Unix-domain or TCP socket) between real
    processes, for the sweep fabric ({!Autocfd_sched.Fabric}).

    Wire format of one frame (all integers big-endian):

    {v "ACFD" | kind:1 | seq:8 | len:4 | fnv64(kind,seq,payload):8 | payload v}

    The reader is incremental and self-resynchronizing: after garbled
    bytes it scans forward to the next magic, and a frame whose checksum
    does not match is dropped whole (framing survives, the payload does
    not), counted in {!type-stats}[.cs_corrupt] and recovered by
    retransmission.  Control frames (ack/nack) are unsequenced: [Ack s]
    acknowledges every data frame with sequence [<= s]; [Nack s] asks the
    peer to retransmit everything unacknowledged from [s] on.

    A {!conn} may be written from several threads (the fabric worker's
    heartbeat thread writes concurrently with its job loop); all writes
    are serialized on an internal lock.  [pump]/[tick] must stay on one
    thread. *)

type kind = Data | Ack | Nack

type frame = { fr_kind : kind; fr_seq : int; fr_payload : string }

val header_len : int
(** Bytes before the payload: 25. *)

val max_payload : int
(** Payload length sanity cap; longer lengths in a header are treated as
    corruption. *)

val checksum : kind:kind -> seq:int -> string -> int64
(** FNV-1a 64 over the kind byte, the 8 sequence bytes and the payload. *)

val encode : kind:kind -> seq:int -> string -> Bytes.t
(** One complete wire frame. *)

type reader
(** Incremental decoder state over a byte stream. *)

val reader : unit -> reader
val reader_corrupt : reader -> int
(** Garbled stretches skipped and checksum-failed frames dropped. *)

val feed : reader -> Bytes.t -> int -> int -> unit
(** [feed r buf off n] appends [n] bytes to the reader's buffer. *)

val next : reader -> frame option
(** The next complete, checksum-valid frame, if the buffer holds one. *)

exception Closed
(** The peer is gone: EOF on read, or EPIPE/ECONNRESET on write. *)

type chaos = { ch_seed : int; ch_corrupt : float; ch_duplicate : float }
(** Deterministic fault injection for tests: each {e fresh} data frame is
    corrupted (one byte of its checksum/payload region flipped, framing
    preserved) with probability [ch_corrupt] and written twice with
    probability [ch_duplicate].  Retransmissions and control frames are
    sent clean, so every schedule terminates. *)

type conn

val conn : ?chaos:chaos -> ?rto:float -> Unix.file_descr -> conn
(** Wrap a connected stream socket.  [rto] (default 0.2s) is the base
    retransmission timeout; unacknowledged frames back off exponentially
    from it. *)

val fd : conn -> Unix.file_descr

val send : conn -> string -> unit
(** Send one payload as a sequenced data frame and remember it for
    retransmission until acknowledged.  Thread-safe.
    @raise Closed if the peer is gone. *)

val pump : conn -> string list
(** Read once from the socket (call after [select] says readable) and
    return the newly deliverable payloads in sequence order.  Handles
    acks, nacks, duplicates and out-of-order arrivals internally; sends
    its own acks/nacks as needed.
    @raise Closed on EOF or a reset connection. *)

val tick : conn -> unit
(** Retransmit unacknowledged frames whose (backed-off) timeout expired.
    Call periodically, e.g. on every [select] timeout. *)

type stats = {
  cs_sent : int;  (** data frames sent (first transmissions) *)
  cs_delivered : int;  (** payloads delivered in order by [pump] *)
  cs_retransmits : int;
  cs_dup_suppressed : int;  (** duplicate data frames discarded *)
  cs_corrupt : int;  (** see {!reader_corrupt} *)
}

val stats : conn -> stats

val close : conn -> unit
(** Close the descriptor (idempotent); later sends raise {!Closed}. *)
