(** Deterministic simulated message-passing cluster.

    [run ~nranks body] executes [nranks] copies of [body] as cooperative
    fibers (OCaml effects) in a single domain, with MPI-flavoured blocking
    point-to-point and collective operations and a virtual clock per rank
    driven by the {!Netmodel} cost model plus explicit {!advance} calls for
    computation.  Scheduling is deterministic (rank order), so runs are
    exactly reproducible.

    Sends are buffered (eager): a send never blocks; a receive blocks until
    a matching message (source, tag) has been enqueued.

    With [?faults] (a {!Fault.plan}), the simulator injects the plan's
    seeded message loss / duplication / corruption / jitter / link
    degradation inside [send], and its rank stalls and crashes at every
    communication operation — without changing the fault-free scheduling
    order, since fault verdicts depend only on per-link sequence numbers,
    never on global interleaving. *)

type comm

exception Deadlock of string
(** Raised by {!run} when no fiber can make progress and no fault has
    been injected: a genuine programming error in the simulated code. *)

exception Timeout of string
(** Raised by {!run} when no fiber can make progress but faults {e have}
    been injected (a crashed rank, or dropped/corrupted messages nobody
    retransmitted): the run is stuck because of the fault schedule, not a
    program bug.  Carries the same per-rank diagnostics as {!Deadlock};
    a recovery layer catches this and restarts from a checkpoint. *)

val rank : comm -> int
val nranks : comm -> int

val send : comm -> dest:int -> tag:int -> float array -> unit
(** Buffered send of a float payload.  The array is copied. *)

val recv : comm -> src:int -> tag:int -> float array
(** Blocking receive matching exactly (src, tag). *)

val recv_deadline :
  comm -> src:int -> tag:int -> deadline:float -> float array option
(** Blocking receive with a watchdog: returns [Some data] like {!recv},
    or [None] once the virtual clock would pass [deadline] with no
    matching message delivered.  Deadlines only fire when the whole
    simulation would otherwise stall (earliest deadline first, lowest
    rank on ties), so a slow-but-live peer never triggers a spurious
    timeout. *)

val try_recv : comm -> src:int -> tag:int -> float array option
(** Nonblocking probe: [Some data] if a matching message has already
    arrived on this rank's virtual clock, [None] otherwise.  Never
    blocks and never advances the clock except the receive overhead of
    an actual delivery. *)

type request
(** Handle of a nonblocking operation. *)

val isend : comm -> dest:int -> tag:int -> float array -> request
(** Nonblocking (eager-buffered) send: completes locally at once; the
    matching {!wait} is free.  Provided for overlap-structured programs. *)

val irecv : comm -> src:int -> tag:int -> request
(** Post a receive; the message is matched and consumed at {!wait} time,
    so computation issued between [irecv] and [wait] overlaps the
    message's flight time on the virtual clock. *)

val wait : comm -> request -> float array
(** Complete a nonblocking operation: [[||]] for sends, the payload for
    receives.  @raise Invalid_argument if the request was already
    completed; the message names the request's kind and peer, e.g.
    ["Sim.wait: recv(src=2, tag=7) request already completed"]. *)

val waitall : comm -> request list -> float array list

val sendrecv :
  comm ->
  dest:int -> send_tag:int -> float array ->
  src:int -> recv_tag:int ->
  float array
(** Combined exchange: buffered send then blocking receive. *)

val barrier : comm -> unit

val allreduce : comm -> [ `Max | `Min | `Sum ] -> float -> float
(** Global reduction; every rank receives the combined value. *)

val bcast : comm -> root:int -> float array -> float array
(** Root's payload is delivered to every rank (root included). *)

val advance : comm -> float -> unit
(** Charge local computation time to the rank's virtual clock. *)

val time : comm -> float
(** The rank's current virtual time. *)

val tracer_of : comm -> Autocfd_obs.Trace.t option
(** The tracer of the enclosing run, so protocol layers built on the raw
    primitives (e.g. {!Reliable}) can record their own events. *)

val net_of : comm -> Netmodel.t
(** The network model of the enclosing run. *)

type stats = {
  elapsed : float;  (** max rank finish time — the simulated wall clock *)
  rank_times : float array;
  messages : int;  (** point-to-point messages *)
  bytes : int;  (** point-to-point payload bytes *)
  collectives : int;
  rank_sends : int array;  (** point-to-point messages sent per rank *)
  rank_recvs : int array;  (** point-to-point messages received per rank *)
  rank_blocked : float array;
      (** per rank, virtual seconds spent idle: waiting for a message that
          had not yet arrived, or for the other ranks to assemble at a
          collective *)
}

val run :
  ?net:Netmodel.t ->
  ?tracer:Autocfd_obs.Trace.t ->
  ?faults:Fault.plan ->
  nranks:int ->
  (comm -> unit) ->
  stats
(** @raise Deadlock when ranks block forever with no fault injected; the
    message lists, for every blocked rank, what it is parked in — the
    (src, tag) of a pending receive, or the collective (barrier,
    allreduce with its operation, bcast with its root) — and its virtual
    time.
    @raise Timeout instead of [Deadlock] when the stall follows injected
    faults (see {!Timeout}); same diagnostics, crashed ranks included.
    @raise Invalid_argument when [nranks < 1].
    Any exception raised by a fiber is re-raised after annotating it with
    the rank.

    When [tracer] is given, every virtual-clock mutation is recorded as an
    {!Autocfd_obs.Trace} event (compute, send/recv overheads, blocked
    intervals with the matched (src, tag), collective assembly and cost,
    injected faults), partitioning each rank's timeline exactly;
    simulated timings are identical with and without a tracer.

    When [faults] is given, {!Fault.begin_run} is called on the plan
    first, so re-running with the same plan replays the same message
    fates while one-shot crash triggers persist across attempts. *)

exception Rank_failure of int * exn
