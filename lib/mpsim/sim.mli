(** Deterministic simulated message-passing cluster.

    [run ~nranks body] executes [nranks] copies of [body] as cooperative
    fibers (OCaml effects) in a single domain, with MPI-flavoured blocking
    point-to-point and collective operations and a virtual clock per rank
    driven by the {!Netmodel} cost model plus explicit {!advance} calls for
    computation.  Scheduling is deterministic (rank order), so runs are
    exactly reproducible.

    Sends are buffered (eager): a send never blocks; a receive blocks until
    a matching message (source, tag) has been enqueued. *)

type comm

exception Deadlock of string
(** Raised by {!run} when no fiber can make progress. *)

val rank : comm -> int
val nranks : comm -> int

val send : comm -> dest:int -> tag:int -> float array -> unit
(** Buffered send of a float payload.  The array is copied. *)

val recv : comm -> src:int -> tag:int -> float array
(** Blocking receive matching exactly (src, tag). *)

type request
(** Handle of a nonblocking operation. *)

val isend : comm -> dest:int -> tag:int -> float array -> request
(** Nonblocking (eager-buffered) send: completes locally at once; the
    matching {!wait} is free.  Provided for overlap-structured programs. *)

val irecv : comm -> src:int -> tag:int -> request
(** Post a receive; the message is matched and consumed at {!wait} time,
    so computation issued between [irecv] and [wait] overlaps the
    message's flight time on the virtual clock. *)

val wait : comm -> request -> float array
(** Complete a nonblocking operation: [[||]] for sends, the payload for
    receives.  @raise Invalid_argument if the request was already
    completed. *)

val waitall : comm -> request list -> float array list

val sendrecv :
  comm ->
  dest:int -> send_tag:int -> float array ->
  src:int -> recv_tag:int ->
  float array
(** Combined exchange: buffered send then blocking receive. *)

val barrier : comm -> unit

val allreduce : comm -> [ `Max | `Min | `Sum ] -> float -> float
(** Global reduction; every rank receives the combined value. *)

val bcast : comm -> root:int -> float array -> float array
(** Root's payload is delivered to every rank (root included). *)

val advance : comm -> float -> unit
(** Charge local computation time to the rank's virtual clock. *)

val time : comm -> float
(** The rank's current virtual time. *)

type stats = {
  elapsed : float;  (** max rank finish time — the simulated wall clock *)
  rank_times : float array;
  messages : int;  (** point-to-point messages *)
  bytes : int;  (** point-to-point payload bytes *)
  collectives : int;
  rank_sends : int array;  (** point-to-point messages sent per rank *)
  rank_recvs : int array;  (** point-to-point messages received per rank *)
  rank_blocked : float array;
      (** per rank, virtual seconds spent idle: waiting for a message that
          had not yet arrived, or for the other ranks to assemble at a
          collective *)
}

val run :
  ?net:Netmodel.t ->
  ?tracer:Autocfd_obs.Trace.t ->
  nranks:int ->
  (comm -> unit) ->
  stats
(** @raise Deadlock when ranks block forever; the message lists, for every
    blocked rank, the (src, tag) it is waiting on and its virtual time.
    @raise Invalid_argument when [nranks < 1].
    Any exception raised by a fiber is re-raised after annotating it with
    the rank.

    When [tracer] is given, every virtual-clock mutation is recorded as an
    {!Autocfd_obs.Trace} event (compute, send/recv overheads, blocked
    intervals with the matched (src, tag), collective assembly and cost),
    partitioning each rank's timeline exactly; simulated timings are
    identical with and without a tracer. *)

exception Rank_failure of int * exn
