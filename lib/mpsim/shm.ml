exception Rank_failure of int * exn

(* raised inside a rank when another rank has already failed: unwinds the
   body quietly so the run can join and re-raise the original exception *)
exception Poisoned

type shared = {
  n : int;
  m : Mutex.t;
  cv : Condition.t;
  mutable bar_count : int;
  mutable bar_sense : bool;
  mutable poisoned : (int * exn) option;
  red_slots : float array;  (* one contribution slot per rank *)
  mutable bc_slot : float array;  (* broadcast payload, valid between barriers *)
  mailboxes : (int * int * int, float array Queue.t) Hashtbl.t;
      (* (src, dest, tag) -> queued payload copies, FIFO *)
  mutable t0 : float;  (* wall clock at run start *)
}

type wait = { w_start : float; w_dur : float; w_barrier : bool }

type comm = {
  sh : shared;
  r : int;
  mutable c_barrier_wait : float;
  mutable c_barrier_calls : int;
  mutable c_recv_wait : float;
  mutable c_sends : int;
  mutable c_recvs : int;
  mutable c_bytes : int;
  mutable c_collectives : int;
  mutable c_waits : wait list;  (* reversed: newest first *)
}

type rank_stats = {
  rs_wall : float;
  rs_barrier_wait : float;
  rs_barrier_calls : int;
  rs_recv_wait : float;
  rs_sends : int;
  rs_recvs : int;
  rs_bytes : int;
  rs_collectives : int;
  rs_waits : wait list;
}

type stats = { elapsed : float; ranks : rank_stats array }

let rank c = c.r
let nranks c = c.sh.n
let now () = Unix.gettimeofday ()
let time c = now () -. c.sh.t0

let check_poison sh = if sh.poisoned <> None then raise Poisoned

(* all waiting below happens on the single shared condvar, so a poison
   broadcast is guaranteed to wake every blocked rank whatever it waits on *)
let with_lock sh f =
  Mutex.lock sh.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.m) f

let record_wait c ~t_start ~dur ~barrier =
  if barrier then c.c_barrier_wait <- c.c_barrier_wait +. dur
  else c.c_recv_wait <- c.c_recv_wait +. dur;
  c.c_waits <-
    { w_start = t_start -. c.sh.t0; w_dur = dur; w_barrier = barrier }
    :: c.c_waits

(* sense-reversing barrier: the last arrival flips the shared sense and
   wakes the cohort; earlier arrivals wait for the flip.  The wait is
   measured so barrier time can be told apart from compute time. *)
let barrier c =
  let sh = c.sh in
  c.c_barrier_calls <- c.c_barrier_calls + 1;
  c.c_collectives <- c.c_collectives + 1;
  with_lock sh (fun () ->
      check_poison sh;
      let s = sh.bar_sense in
      sh.bar_count <- sh.bar_count + 1;
      if sh.bar_count = sh.n then begin
        sh.bar_count <- 0;
        sh.bar_sense <- not s;
        Condition.broadcast sh.cv
      end
      else begin
        let t = now () in
        while sh.bar_sense = s && sh.poisoned = None do
          Condition.wait sh.cv sh.m
        done;
        record_wait c ~t_start:t ~dur:(now () -. t) ~barrier:true;
        check_poison sh
      end)

(* Deterministic allreduce: contributions land in per-rank slots, then
   every rank folds them in rank order 0..n-1 with the same combine as
   Sim.allreduce, so the result is bit-identical to the simulator's and
   identical on every rank.  The second barrier keeps the slots alive
   until everyone has folded. *)
let allreduce c op v =
  let sh = c.sh in
  sh.red_slots.(c.r) <- v;
  barrier c;
  let combine a b =
    match op with
    | `Max -> Float.max a b
    | `Min -> Float.min a b
    | `Sum -> a +. b
  in
  let acc = ref sh.red_slots.(0) in
  for r = 1 to sh.n - 1 do
    acc := combine !acc sh.red_slots.(r)
  done;
  let out = !acc in
  barrier c;
  out

let bcast c ~root data =
  let sh = c.sh in
  if root < 0 || root >= sh.n then invalid_arg "Shm.bcast: bad root";
  if c.r = root then sh.bc_slot <- Array.copy data;
  barrier c;
  let out = Array.copy sh.bc_slot in
  barrier c;
  out

let mailbox sh key =
  match Hashtbl.find_opt sh.mailboxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace sh.mailboxes key q;
      q

let send c ~dest ~tag data =
  let sh = c.sh in
  if dest < 0 || dest >= sh.n then invalid_arg "Shm.send: bad dest";
  with_lock sh (fun () ->
      check_poison sh;
      Queue.push (Array.copy data) (mailbox sh (c.r, dest, tag));
      c.c_sends <- c.c_sends + 1;
      c.c_bytes <- c.c_bytes + (8 * Array.length data);
      Condition.broadcast sh.cv)

let recv c ~src ~tag =
  let sh = c.sh in
  if src < 0 || src >= sh.n then invalid_arg "Shm.recv: bad src";
  with_lock sh (fun () ->
      check_poison sh;
      let q = mailbox sh (src, c.r, tag) in
      if Queue.is_empty q then begin
        let t = now () in
        while Queue.is_empty q && sh.poisoned = None do
          Condition.wait sh.cv sh.m
        done;
        record_wait c ~t_start:t ~dur:(now () -. t) ~barrier:false;
        check_poison sh
      end;
      c.c_recvs <- c.c_recvs + 1;
      Queue.pop q)

let stats_of ~wall c =
  {
    rs_wall = wall;
    rs_barrier_wait = c.c_barrier_wait;
    rs_barrier_calls = c.c_barrier_calls;
    rs_recv_wait = c.c_recv_wait;
    rs_sends = c.c_sends;
    rs_recvs = c.c_recvs;
    rs_bytes = c.c_bytes;
    rs_collectives = c.c_collectives;
    rs_waits = List.rev c.c_waits;
  }

let run ~nranks body =
  if nranks < 1 then invalid_arg "Shm.run: nranks < 1";
  let sh =
    {
      n = nranks;
      m = Mutex.create ();
      cv = Condition.create ();
      bar_count = 0;
      bar_sense = false;
      poisoned = None;
      red_slots = Array.make nranks 0.0;
      bc_slot = [||];
      mailboxes = Hashtbl.create 16;
      t0 = 0.0;
    }
  in
  let comms =
    Array.init nranks (fun r ->
        {
          sh;
          r;
          c_barrier_wait = 0.0;
          c_barrier_calls = 0;
          c_recv_wait = 0.0;
          c_sends = 0;
          c_recvs = 0;
          c_bytes = 0;
          c_collectives = 0;
          c_waits = [];
        })
  in
  let finish = Array.make nranks 0.0 in
  let wrap r =
    (try body comms.(r) with
    | Poisoned -> ()
    | e ->
        with_lock sh (fun () ->
            if sh.poisoned = None then sh.poisoned <- Some (r, e);
            Condition.broadcast sh.cv));
    finish.(r) <- now () -. sh.t0
  in
  sh.t0 <- now ();
  (* rank 0 runs on the calling domain, like Pool's worker 0 *)
  let doms =
    Array.init (nranks - 1) (fun k -> Domain.spawn (fun () -> wrap (k + 1)))
  in
  wrap 0;
  Array.iter Domain.join doms;
  (match sh.poisoned with
  | Some (r, e) -> raise (Rank_failure (r, e))
  | None -> ());
  {
    elapsed = Array.fold_left Float.max 0.0 finish;
    ranks = Array.mapi (fun r c -> stats_of ~wall:finish.(r) c) comms;
  }
