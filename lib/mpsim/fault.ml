module Prng = Autocfd_util.Prng

type trigger = At_time of float | At_op of int

type stall_spec = { sl_rank : int; sl_at : trigger; sl_duration : float }
type crash_spec = { cr_rank : int; cr_at : trigger }

type spec = {
  fs_seed : int;
  fs_loss : float;
  fs_duplication : float;
  fs_corruption : float;
  fs_jitter : float;
  fs_reorder : float;
  fs_degrade : (int * int * float) list;
  fs_stalls : stall_spec list;
  fs_crashes : crash_spec list;
}

let spec ~seed ?(loss = 0.0) ?(duplication = 0.0) ?(corruption = 0.0)
    ?(jitter = 0.0) ?(reorder = 0.0) ?(degrade = []) ?(stalls = [])
    ?(crashes = []) () =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault.spec: %s=%g not in [0, 1]" name p)
  in
  prob "loss" loss;
  prob "duplication" duplication;
  prob "corruption" corruption;
  prob "reorder" reorder;
  if jitter < 0.0 then invalid_arg "Fault.spec: negative jitter";
  List.iter
    (fun (s, d, f) ->
      if f < 1.0 then
        invalid_arg
          (Printf.sprintf "Fault.spec: degrade factor %g < 1 on link %d->%d" f
             s d))
    degrade;
  List.iter
    (fun s ->
      if s.sl_duration < 0.0 then
        invalid_arg "Fault.spec: negative stall duration")
    stalls;
  {
    fs_seed = seed;
    fs_loss = loss;
    fs_duplication = duplication;
    fs_corruption = corruption;
    fs_jitter = jitter;
    fs_reorder = reorder;
    fs_degrade = degrade;
    fs_stalls = stalls;
    fs_crashes = crashes;
  }

type counters = {
  fc_drops : int;
  fc_duplicates : int;
  fc_corruptions : int;
  fc_reorders : int;
  fc_stalls : int;
  fc_crashes : int;
}

type plan = {
  p_spec : spec;
  p_link_idx : (int * int, int ref) Hashtbl.t;
  p_rank_ops : (int, int ref) Hashtbl.t;
  p_stall_fired : bool array;  (** per spec index; reset each run *)
  p_crash_fired : bool array;  (** per spec index; survives restarts *)
  mutable p_drops : int;
  mutable p_duplicates : int;
  mutable p_corruptions : int;
  mutable p_reorders : int;
  mutable p_stalls : int;
  mutable p_crashes : int;
}

let make s =
  {
    p_spec = s;
    p_link_idx = Hashtbl.create 16;
    p_rank_ops = Hashtbl.create 16;
    p_stall_fired = Array.make (List.length s.fs_stalls) false;
    p_crash_fired = Array.make (List.length s.fs_crashes) false;
    p_drops = 0;
    p_duplicates = 0;
    p_corruptions = 0;
    p_reorders = 0;
    p_stalls = 0;
    p_crashes = 0;
  }

let spec_of p = p.p_spec

let counters p =
  {
    fc_drops = p.p_drops;
    fc_duplicates = p.p_duplicates;
    fc_corruptions = p.p_corruptions;
    fc_reorders = p.p_reorders;
    fc_stalls = p.p_stalls;
    fc_crashes = p.p_crashes;
  }

let crashed_ranks p =
  let out = ref [] in
  List.iteri
    (fun i c -> if p.p_crash_fired.(i) then out := c.cr_rank :: !out)
    p.p_spec.fs_crashes;
  List.sort_uniq compare !out

let any_fired p =
  p.p_drops + p.p_duplicates + p.p_corruptions + p.p_reorders + p.p_stalls
  + p.p_crashes
  > 0

let begin_run p =
  Hashtbl.reset p.p_link_idx;
  Hashtbl.reset p.p_rank_ops;
  Array.fill p.p_stall_fired 0 (Array.length p.p_stall_fired) false

type send_verdict = {
  sv_drop : bool;
  sv_duplicate : bool;
  sv_corrupt : (int * int) option;
  sv_delay : float;
  sv_reorder : bool;
  sv_factor : float;
}

let clean_verdict =
  {
    sv_drop = false;
    sv_duplicate = false;
    sv_corrupt = None;
    sv_delay = 0.0;
    sv_reorder = false;
    sv_factor = 1.0;
  }

let counter tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl key r;
      r

(* One private stream per (seed, src, dest, link send index): verdicts do
   not depend on the global interleaving of sends, only on the per-link
   sequence number, so retransmissions of a dropped message get fresh
   draws and an identical schedule replays identically. *)
let message_gen p ~src ~dest ~idx =
  let h = p.p_spec.fs_seed in
  let h = (h * 0x1000193) + src + 1 in
  let h = (h * 0x1000193) + dest + 1 in
  let h = (h * 0x1000193) + idx + 1 in
  Prng.create (h land max_int)

let on_send p ~src ~dest ~words =
  let s = p.p_spec in
  let idx = counter p.p_link_idx (src, dest) in
  let k = !idx in
  incr idx;
  let factor =
    List.fold_left
      (fun acc (fs, fd, f) -> if fs = src && fd = dest then Float.max acc f else acc)
      1.0 s.fs_degrade
  in
  let randomized =
    s.fs_loss > 0.0 || s.fs_duplication > 0.0 || s.fs_corruption > 0.0
    || s.fs_jitter > 0.0 || s.fs_reorder > 0.0
  in
  if not randomized then { clean_verdict with sv_factor = factor }
  else begin
    let g = message_gen p ~src ~dest ~idx:k in
    (* fixed draw order keeps the schedule stable across rate changes *)
    let u_loss = Prng.float g 1.0 in
    let u_dup = Prng.float g 1.0 in
    let u_cor = Prng.float g 1.0 in
    let delay = if s.fs_jitter > 0.0 then Prng.float g s.fs_jitter else 0.0 in
    let drop = u_loss < s.fs_loss in
    let dup = (not drop) && u_dup < s.fs_duplication in
    let corrupt =
      if (not drop) && words > 0 && u_cor < s.fs_corruption then
        Some (Prng.int g words, Prng.int g 64)
      else None
    in
    (* drawn after the original fields so pre-existing schedules replay
       unchanged when reorder stays 0 *)
    let reorder =
      (not drop)
      && s.fs_reorder > 0.0
      && Prng.float g 1.0 < s.fs_reorder
    in
    if drop then p.p_drops <- p.p_drops + 1;
    if dup then p.p_duplicates <- p.p_duplicates + 1;
    if corrupt <> None then p.p_corruptions <- p.p_corruptions + 1;
    if reorder then p.p_reorders <- p.p_reorders + 1;
    {
      sv_drop = drop;
      sv_duplicate = dup;
      sv_corrupt = corrupt;
      sv_delay = delay;
      sv_reorder = reorder;
      sv_factor = factor;
    }
  end

type op_action = Op_none | Op_stall of float | Op_crash

let triggered at ~ops ~time =
  match at with At_time t -> time >= t | At_op n -> ops >= n

let on_op p ~rank ~time ~is_op =
  let s = p.p_spec in
  if s.fs_stalls = [] && s.fs_crashes = [] then Op_none
  else begin
    let ops_r = counter p.p_rank_ops rank in
    if is_op then incr ops_r;
    let ops = !ops_r in
    let action = ref Op_none in
    List.iteri
      (fun i sl ->
        if
          !action = Op_none && sl.sl_rank = rank
          && (not p.p_stall_fired.(i))
          && triggered sl.sl_at ~ops ~time
        then begin
          p.p_stall_fired.(i) <- true;
          p.p_stalls <- p.p_stalls + 1;
          action := Op_stall sl.sl_duration
        end)
      s.fs_stalls;
    if !action = Op_none then
      List.iteri
        (fun i cr ->
          if
            !action = Op_none && cr.cr_rank = rank
            && (not p.p_crash_fired.(i))
            && triggered cr.cr_at ~ops ~time
          then begin
            p.p_crash_fired.(i) <- true;
            p.p_crashes <- p.p_crashes + 1;
            action := Op_crash
          end)
        s.fs_crashes;
    !action
  end
