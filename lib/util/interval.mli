(** Closed integer intervals [lo, hi], used for synchronization regions
    expressed as program-line ranges. *)

type t = private { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi] is the interval [lo, hi].  @raise Invalid_argument if
    [lo > hi]. *)

val lo : t -> int
val hi : t -> int
val length : t -> int
(** Number of integer points covered. *)

val mem : int -> t -> bool
val contains : t -> t -> bool
(** [contains outer inner] is true when [inner] lies entirely in [outer]. *)

val intersects : t -> t -> bool

val inter : t -> t -> t option
(** Intersection, [None] when disjoint. *)

val hull : t -> t -> t
(** Smallest interval covering both. *)

val sum : t -> t -> t
(** Minkowski sum: the exact range of [x + y] for [x] in the first
    interval and [y] in the second. *)

val affine : mul:int -> add:int -> t -> t
(** Exact image of the interval under [x -> mul*x + add] (endpoints swap
    when [mul] is negative).  Used by the fused-kernel bounds prover to
    fold affine subscripts over loop trip spaces. *)

val compare_start : t -> t -> int
(** Order by [lo], ties broken by [hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
