type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo=%d > hi=%d" lo hi);
  { lo; hi }

let lo t = t.lo
let hi t = t.hi
let length t = t.hi - t.lo + 1
let mem x t = t.lo <= x && x <= t.hi
let contains outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let inter a b =
  if intersects a b then Some { lo = max a.lo b.lo; hi = min a.hi b.hi }
  else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let sum a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

let affine ~mul ~add t =
  if mul >= 0 then { lo = (mul * t.lo) + add; hi = (mul * t.hi) + add }
  else { lo = (mul * t.hi) + add; hi = (mul * t.lo) + add }

let compare_start a b =
  match compare a.lo b.lo with 0 -> compare a.hi b.hi | c -> c

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf t = Format.fprintf ppf "[%d, %d]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
