(** Abstract syntax of the Fortran-77 subset consumed by the pre-compiler,
    extended with the SPMD constructs the code generator inserts
    (communication statements and loop schedules). *)

type dtype = Integer | Real | Double | Logical
[@@deriving show { with_path = false }, eq]

type unop = Neg | Lnot [@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
[@@deriving show { with_path = false }, eq]

type expr =
  | Const_int of int
  | Const_real of float
  | Const_bool of bool
  | Const_str of string
  | Var of string
  | Ref of string * expr list
      (** array element or intrinsic/function call — disambiguated against
          declarations during analysis/interpretation *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Local_lo of int * expr
      (** SPMD: [max lo_expr (block low bound of grid dim d)] *)
  | Local_hi of int * expr
      (** SPMD: [min hi_expr (block high bound of grid dim d)] *)
[@@deriving show { with_path = false }, eq]

(** Direction of a halo transfer along one grid dimension. *)
type direction = Dplus | Dminus [@@deriving show { with_path = false }, eq]

(** One halo transfer inserted at a combined synchronization point: send the
    owned boundary plane(s) of [xfer_array] along grid dimension [xfer_dim]
    towards [xfer_dir], to [xfer_depth] planes deep; symmetrically receive
    into the ghost region on the opposite side. *)
type transfer = {
  xfer_array : string;
  xfer_dim : int;  (** grid (status) dimension index, 0-based *)
  xfer_dir : direction;
  xfer_depth : int;
}
[@@deriving show { with_path = false }, eq]

type comm =
  | Exchange of transfer list
      (** halo exchange with every neighbor concerned, aggregated as one
          combined synchronization point *)
  | Allreduce_max of string  (** global max of a scalar variable *)
  | Allreduce_min of string
  | Allreduce_sum of string
  | Broadcast of string list  (** root-0 broadcast of scalar variables *)
  | Allgather of string list
      (** every rank receives every owner's region of the listed arrays:
          inserted before a replicated (Serial-strategy) field loop that
          reads distributed data — the conservative fallback for loops the
          mirror-image decomposition cannot legally pipeline *)
  | Barrier
[@@deriving show { with_path = false }, eq]

(** How a DO loop is executed in the generated SPMD program. *)
type sched =
  | Sched_seq  (** replicated sequential execution on every rank *)
  | Sched_block of int
      (** bounds restricted to the rank's block in grid dimension [d] *)
  | Sched_pipeline of { dim : int; dir : direction }
      (** mirror-image / wavefront pipelining: ranks execute their block of
          grid dimension [dim] in pipeline order along [dir] *)
[@@deriving show { with_path = false }, eq]

type stmt = { s_id : int; s_label : int option; s_line : int; s_kind : kind }

and kind =
  | Assign of expr * expr  (** lhs (Var or Ref) = rhs *)
  | If of (expr * block) list * block option
      (** if/else-if chain with optional else *)
  | Do of do_loop
  | Goto of int
  | Continue
  | Call of string * expr list
  | Return
  | Stop
  | Read of expr list  (** simplified list-directed READ *)
  | Write of expr list  (** simplified list-directed WRITE/PRINT *)
  | Comm of comm  (** inserted by the code generator *)
  | Pipeline_recv of { dim : int; dir : direction; arrays : (string * int) list }
      (** inserted before a pipelined sweep: wait for upstream new values;
          (array, depth) pairs *)
  | Pipeline_send of { dim : int; dir : direction; arrays : (string * int) list }
      (** inserted after a pipelined sweep: forward new boundary downstream *)

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option;
  do_body : block;
  do_sched : sched;
  do_fission : fission_tag option;
      (** provenance when the nest is a fragment emitted by the
          loop-fission pass; [None] on source nests *)
}

and fission_tag = {
  fi_frag : int;  (** 1-based fragment index within the source nest *)
  fi_nfrags : int;  (** total fragments the source nest split into *)
}

and block = stmt list [@@deriving show { with_path = false }]

type decl = {
  d_name : string;
  d_type : dtype;
  d_dims : (expr * expr) list;  (** (lower, upper) bound per dimension *)
}
[@@deriving show { with_path = false }]

type unit_kind = Main | Subroutine of string list
[@@deriving show { with_path = false }]

type program_unit = {
  u_name : string;
  u_kind : unit_kind;
  u_decls : decl list;
  u_consts : (string * expr) list;  (** PARAMETER constants, in order *)
  u_commons : (string * string list) list;  (** COMMON /name/ vars *)
  u_data : (string * expr list) list;  (** DATA initializations *)
  u_body : block;
}
[@@deriving show { with_path = false }]

type program = {
  p_units : program_unit list;
  p_directives : Directive.t list;
}
[@@deriving show { with_path = false }]

(* ------------------------------------------------------------------ *)
(* Constructors and traversals                                         *)
(* ------------------------------------------------------------------ *)

(* atomic so concurrent parses (one per sweep-scheduler worker domain)
   still mint unique, per-program strictly increasing ids *)
let stmt_counter = Atomic.make 0

let mk_stmt ?label ?(line = 0) kind =
  let id = 1 + Atomic.fetch_and_add stmt_counter 1 in
  { s_id = id; s_label = label; s_line = line; s_kind = kind }

let reset_ids () = Atomic.set stmt_counter 0

(** [fold_stmts f acc block] folds [f] over every statement in pre-order,
    descending into loop bodies and branches. *)
let rec fold_stmts f acc block =
  List.fold_left
    (fun acc st ->
      let acc = f acc st in
      match st.s_kind with
      | Do d -> fold_stmts f acc d.do_body
      | If (branches, els) ->
          let acc =
            List.fold_left (fun acc (_, b) -> fold_stmts f acc b) acc branches
          in
          Option.fold ~none:acc ~some:(fold_stmts f acc) els
      | Assign _ | Goto _ | Continue | Call _ | Return | Stop | Read _
      | Write _ | Comm _ | Pipeline_recv _ | Pipeline_send _ ->
          acc)
    acc block

let iter_stmts f block = fold_stmts (fun () st -> f st) () block

(** [fold_exprs f acc e] folds over [e] and all sub-expressions. *)
let rec fold_exprs f acc e =
  let acc = f acc e in
  match e with
  | Const_int _ | Const_real _ | Const_bool _ | Const_str _ | Var _ -> acc
  | Ref (_, args) -> List.fold_left (fold_exprs f) acc args
  | Unop (_, a) -> fold_exprs f acc a
  | Binop (_, a, b) -> fold_exprs f (fold_exprs f acc a) b
  | Local_lo (_, a) | Local_hi (_, a) -> fold_exprs f acc a

(** Expressions appearing directly in a statement (not descending into
    nested statements). *)
let stmt_exprs st =
  match st.s_kind with
  | Assign (lhs, rhs) -> [ lhs; rhs ]
  | If (branches, _) -> List.map fst branches
  | Do d -> (d.do_lo :: d.do_hi :: Option.to_list d.do_step)
  | Call (_, args) -> args
  | Read es | Write es -> es
  | Goto _ | Continue | Return | Stop | Comm _ | Pipeline_recv _
  | Pipeline_send _ ->
      []

(** Map over every expression of a block in place-preserving style,
    rebuilding the block. *)
let rec map_block fe block = List.map (map_stmt fe) block

and map_stmt fe st =
  let kind =
    match st.s_kind with
    | Assign (l, r) -> Assign (fe l, fe r)
    | If (branches, els) ->
        If
          ( List.map (fun (c, b) -> (fe c, map_block fe b)) branches,
            Option.map (map_block fe) els )
    | Do d ->
        Do
          {
            d with
            do_lo = fe d.do_lo;
            do_hi = fe d.do_hi;
            do_step = Option.map fe d.do_step;
            do_body = map_block fe d.do_body;
          }
    | Call (name, args) -> Call (name, List.map fe args)
    | Read es -> Read (List.map fe es)
    | Write es -> Write (List.map fe es)
    | (Goto _ | Continue | Return | Stop | Comm _ | Pipeline_recv _
      | Pipeline_send _) as k ->
        k
  in
  { st with s_kind = kind }

let find_unit program name =
  List.find_opt
    (fun u -> String.lowercase_ascii u.u_name = String.lowercase_ascii name)
    program.p_units

let main_unit program =
  match List.find_opt (fun u -> u.u_kind = Main) program.p_units with
  | Some u -> u
  | None -> invalid_arg "Ast.main_unit: program has no main unit"

(** Names of intrinsic functions recognized by the interpreter; a [Ref] to
    one of these is a call, never an array access. *)
let intrinsics =
  [
    "abs"; "max"; "min"; "sqrt"; "exp"; "log"; "sin"; "cos"; "tan"; "atan";
    "mod"; "float"; "real"; "int"; "dble"; "sign"; "amax1"; "amin1"; "max0";
    "min0";
  ]

let is_intrinsic name = List.mem (String.lowercase_ascii name) intrinsics
