open Ast

type state = {
  toks : Lexer.token array;
  mutable pos : int;
  (* labels of open labelled-DO loops, innermost first *)
  mutable do_labels : int list;
  (* set when a statement carrying an open DO label has been consumed; the
     enclosing DO parsers terminate on it (shared terminal labels) *)
  mutable terminated : int option;
}

let make_state toks =
  { toks = Array.of_list toks; pos = 0; do_labels = []; terminated = None }

let peek st = st.toks.(st.pos).tok
let peek_line st = st.toks.(st.pos).tline
let advance st = st.pos <- st.pos + 1

let next st =
  let t = st.toks.(st.pos) in
  advance st;
  t.tok

let error st fmt =
  Loc.errorf (Loc.make (peek_line st) 0) fmt

let expect st tok =
  let got = peek st in
  if Token.equal got tok then advance st
  else
    error st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string got)

let accept st tok =
  if Token.equal (peek st) tok then (advance st; true) else false

(* Case-insensitive keyword matching on identifiers. *)
let peek_ident st =
  match peek st with Token.Ident s -> Some s | _ -> None

let accept_ident st kw =
  match peek st with
  | Token.Ident s when s = kw -> advance st; true
  | _ -> false

let expect_ident st kw =
  if not (accept_ident st kw) then
    error st "expected keyword '%s' but found %s" kw
      (Token.to_string (peek st))

let ident st =
  match next st with
  | Token.Ident s -> s
  | t -> error st "expected an identifier but found %s" (Token.to_string t)

let skip_newlines st =
  while Token.equal (peek st) Token.Newline do advance st done

let end_of_stmt st = expect st Token.Newline

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* fold negation of literals so that "-5" and DATA-style negative constants
   are the same AST *)
let neg = function
  | Const_int i -> Const_int (-i)
  | Const_real f -> Const_real (-.f)
  | e -> Unop (Neg, e)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st Token.Or do
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept st Token.And do
    let rhs = parse_not st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_not st =
  if accept st Token.Not then Unop (Lnot, parse_not st)
  else parse_rel st

and parse_rel st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.Lt -> Some Lt
    | Token.Le -> Some Le
    | Token.Gt -> Some Gt
    | Token.Ge -> Some Ge
    | Token.Eq -> Some Eq
    | Token.Ne -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      let rhs = parse_additive st in
      Binop (op, lhs, rhs)

and parse_additive st =
  (* optional leading sign binds looser than * and ** *)
  let first =
    if accept st Token.Minus then neg (parse_term st)
    else begin
      ignore (accept st Token.Plus);
      parse_term st
    end
  in
  let lhs = ref first in
  let continue = ref true in
  while !continue do
    if accept st Token.Plus then lhs := Binop (Add, !lhs, parse_term st)
    else if accept st Token.Minus then lhs := Binop (Sub, !lhs, parse_term st)
    else continue := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_factor st) in
  let continue = ref true in
  while !continue do
    if accept st Token.Star then lhs := Binop (Mul, !lhs, parse_factor st)
    else if accept st Token.Slash then lhs := Binop (Div, !lhs, parse_factor st)
    else continue := false
  done;
  !lhs

and parse_factor st =
  (* right-associative ** *)
  let base = parse_primary st in
  if accept st Token.Power then
    let exp =
      (* unary minus allowed in exponent: a ** -2 *)
      if accept st Token.Minus then neg (parse_factor st)
      else parse_factor st
    in
    Binop (Pow, base, exp)
  else base

and parse_primary st =
  match next st with
  | Token.Int i -> Const_int i
  | Token.Real f -> Const_real f
  | Token.Str s -> Const_str s
  | Token.True -> Const_bool true
  | Token.False -> Const_bool false
  | Token.Minus -> neg (parse_primary st)
  | Token.Plus -> parse_primary st
  | Token.Lparen ->
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Ident name ->
      if accept st Token.Lparen then begin
        let args = parse_arg_list st in
        expect st Token.Rparen;
        Ref (name, args)
      end
      else Var name
  | t -> error st "expected an expression but found %s" (Token.to_string t)

and parse_arg_list st =
  if Token.equal (peek st) Token.Rparen then []
  else begin
    let first = parse_expr st in
    let args = ref [ first ] in
    while accept st Token.Comma do
      args := parse_expr st :: !args
    done;
    List.rev !args
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* A block terminator keyword at the current position? *)
let at_block_end st =
  match peek_ident st with
  | Some ("end" | "enddo" | "endif" | "else" | "elseif") -> true
  | _ -> false

let take_label st =
  match peek st with
  | Token.Label l -> advance st; Some l
  | _ -> None

(* read(*,*) / write(*,*) control list: accept '*' and integers, ignore *)
let parse_io_control st =
  if accept st Token.Lparen then begin
    let continue = ref true in
    while !continue do
      (match peek st with
      | Token.Star | Token.Int _ -> advance st
      | Token.Ident _ -> advance st
      | t -> error st "unexpected token in I/O control list: %s"
               (Token.to_string t));
      if not (accept st Token.Comma) then continue := false
    done;
    expect st Token.Rparen
  end
  else if accept st Token.Star then
    ignore (accept st Token.Comma)
  else error st "expected I/O control list"

let parse_io_items st =
  if Token.equal (peek st) Token.Newline then []
  else begin
    let items = ref [ parse_expr st ] in
    while accept st Token.Comma do
      items := parse_expr st :: !items
    done;
    List.rev !items
  end

let rec parse_stmt st : stmt =
  skip_newlines st;
  let label = take_label st in
  let line = peek_line st in
  let mk kind =
    let s = mk_stmt ?label ~line kind in
    (* a labelled statement that matches an open DO label terminates that
       loop (and every enclosing loop sharing the label) *)
    (match label with
    | Some l when List.mem l st.do_labels -> st.terminated <- Some l
    | _ -> ());
    s
  in
  match peek_ident st with
  | Some "continue" ->
      advance st;
      end_of_stmt st;
      mk Continue
  | Some "goto" ->
      advance st;
      let target =
        match next st with
        | Token.Int l -> l
        | t -> error st "goto expects a label, found %s" (Token.to_string t)
      in
      end_of_stmt st;
      mk (Goto target)
  | Some "go" ->
      advance st;
      expect_ident st "to";
      let target =
        match next st with
        | Token.Int l -> l
        | t -> error st "go to expects a label, found %s" (Token.to_string t)
      in
      end_of_stmt st;
      mk (Goto target)
  | Some "call" ->
      advance st;
      let name = ident st in
      let args =
        if accept st Token.Lparen then begin
          let args = parse_arg_list st in
          expect st Token.Rparen;
          args
        end
        else []
      in
      end_of_stmt st;
      mk (Call (name, args))
  | Some "return" ->
      advance st;
      end_of_stmt st;
      mk Return
  | Some "stop" ->
      advance st;
      (* optional stop code *)
      (match peek st with
      | Token.Int _ | Token.Str _ -> advance st
      | _ -> ());
      end_of_stmt st;
      mk Stop
  | Some "read" ->
      advance st;
      parse_io_control st;
      let items = parse_io_items st in
      end_of_stmt st;
      mk (Read items)
  | Some "write" ->
      advance st;
      parse_io_control st;
      let items = parse_io_items st in
      end_of_stmt st;
      mk (Write items)
  | Some "print" ->
      advance st;
      (if accept st Token.Star then ignore (accept st Token.Comma)
       else error st "print expects '*'");
      let items = parse_io_items st in
      end_of_stmt st;
      mk (Write items)
  | Some "if" -> parse_if st mk
  | Some "do" -> parse_do st mk
  | Some _ ->
      (* assignment: lhs = rhs *)
      let name = ident st in
      let lhs =
        if accept st Token.Lparen then begin
          let args = parse_arg_list st in
          expect st Token.Rparen;
          Ref (name, args)
        end
        else Var name
      in
      expect st Token.Assign;
      let rhs = parse_expr st in
      end_of_stmt st;
      mk (Assign (lhs, rhs))
  | None ->
      error st "expected a statement but found %s" (Token.to_string (peek st))

and parse_if st mk =
  expect_ident st "if";
  expect st Token.Lparen;
  let cond = parse_expr st in
  expect st Token.Rparen;
  if accept_ident st "then" then begin
    end_of_stmt st;
    let branches = ref [] in
    let els = ref None in
    let first_block = parse_block st in
    branches := [ (cond, first_block) ];
    let rec tail () =
      skip_newlines st;
      if accept_ident st "elseif" then begin
        expect st Token.Lparen;
        let c = parse_expr st in
        expect st Token.Rparen;
        expect_ident st "then";
        end_of_stmt st;
        let b = parse_block st in
        branches := (c, b) :: !branches;
        tail ()
      end
      else if accept_ident st "else" then
        if accept_ident st "if" then begin
          expect st Token.Lparen;
          let c = parse_expr st in
          expect st Token.Rparen;
          expect_ident st "then";
          end_of_stmt st;
          let b = parse_block st in
          branches := (c, b) :: !branches;
          tail ()
        end
        else begin
          end_of_stmt st;
          els := Some (parse_block st);
          close_if ()
        end
      else close_if ()
    and close_if () =
      skip_newlines st;
      if accept_ident st "endif" then end_of_stmt st
      else begin
        expect_ident st "end";
        expect_ident st "if";
        end_of_stmt st
      end
    in
    tail ();
    mk (If (List.rev !branches, !els))
  end
  else begin
    (* logical IF: if (cond) statement *)
    let body_stmt = parse_inline_stmt st in
    mk (If ([ (cond, [ body_stmt ]) ], None))
  end

(* The statement part of a logical IF — a restricted subset, ending the
   current line. *)
and parse_inline_stmt st =
  let line = peek_line st in
  match peek_ident st with
  | Some "goto" ->
      advance st;
      let target =
        match next st with
        | Token.Int l -> l
        | t -> error st "goto expects a label, found %s" (Token.to_string t)
      in
      end_of_stmt st;
      mk_stmt ~line (Goto target)
  | Some "go" ->
      advance st;
      expect_ident st "to";
      let target =
        match next st with
        | Token.Int l -> l
        | t -> error st "go to expects a label, found %s" (Token.to_string t)
      in
      end_of_stmt st;
      mk_stmt ~line (Goto target)
  | Some "call" ->
      advance st;
      let name = ident st in
      let args =
        if accept st Token.Lparen then begin
          let args = parse_arg_list st in
          expect st Token.Rparen;
          args
        end
        else []
      in
      end_of_stmt st;
      mk_stmt ~line (Call (name, args))
  | Some "return" ->
      advance st;
      end_of_stmt st;
      mk_stmt ~line Return
  | Some "stop" ->
      advance st;
      (match peek st with
      | Token.Int _ | Token.Str _ -> advance st
      | _ -> ());
      end_of_stmt st;
      mk_stmt ~line Stop
  | Some "continue" ->
      advance st;
      end_of_stmt st;
      mk_stmt ~line Continue
  | Some _ ->
      let name = ident st in
      let lhs =
        if accept st Token.Lparen then begin
          let args = parse_arg_list st in
          expect st Token.Rparen;
          Ref (name, args)
        end
        else Var name
      in
      expect st Token.Assign;
      let rhs = parse_expr st in
      end_of_stmt st;
      mk_stmt ~line (Assign (lhs, rhs))
  | None -> error st "expected a statement after logical IF"

and parse_do st mk =
  expect_ident st "do";
  (* optional terminal label *)
  let term_label =
    match peek st with
    | Token.Int l -> advance st; ignore (accept st Token.Comma); Some l
    | _ -> None
  in
  let var = ident st in
  expect st Token.Assign;
  let lo = parse_expr st in
  expect st Token.Comma;
  let hi = parse_expr st in
  let step = if accept st Token.Comma then Some (parse_expr st) else None in
  end_of_stmt st;
  let body =
    match term_label with
    | None ->
        let body = parse_block st in
        skip_newlines st;
        if accept_ident st "enddo" then end_of_stmt st
        else begin
          expect_ident st "end";
          expect_ident st "do";
          end_of_stmt st
        end;
        body
    | Some l ->
        st.do_labels <- l :: st.do_labels;
        let body = parse_labeled_body st l in
        st.do_labels <- List.tl st.do_labels;
        (* if the label is still expected by an enclosing DO, leave
           [terminated] set so it closes too *)
        (match st.terminated with
        | Some l' when l' = l && not (List.mem l st.do_labels) ->
            st.terminated <- None
        | _ -> ());
        body
  in
  mk (Do { do_var = var; do_lo = lo; do_hi = hi; do_step = step;
           do_body = body; do_sched = Sched_seq; do_fission = None })

and parse_labeled_body st l =
  let stmts = ref [] in
  let continue = ref true in
  while !continue do
    skip_newlines st;
    let stmt = parse_stmt st in
    stmts := stmt :: !stmts;
    match st.terminated with
    | Some l' when l' = l -> continue := false
    | Some _ ->
        error st "DO loop termination label mismatch (expected %d)" l
    | None -> ()
  done;
  List.rev !stmts

and parse_block st =
  let stmts = ref [] in
  let continue = ref true in
  while !continue do
    skip_newlines st;
    if at_block_end st then continue := false
    else begin
      let stmt = parse_stmt st in
      stmts := stmt :: !stmts;
      if st.terminated <> None then
        error st "labelled DO termination crosses a block boundary"
    end
  done;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations and program units                                      *)
(* ------------------------------------------------------------------ *)

type unit_builder = {
  mutable decls : decl list;
  mutable consts : (string * expr) list;
  mutable commons : (string * string list) list;
  mutable data : (string * expr list) list;
}

let parse_dims st =
  if accept st Token.Lparen then begin
    let dims = ref [] in
    let parse_dim () =
      let first = parse_expr st in
      if accept st Token.Colon then begin
        let upper = parse_expr st in
        dims := (first, upper) :: !dims
      end
      else dims := (Const_int 1, first) :: !dims
    in
    parse_dim ();
    while accept st Token.Comma do parse_dim () done;
    expect st Token.Rparen;
    List.rev !dims
  end
  else []

let parse_decl_entities st b dtype =
  let parse_one () =
    let name = ident st in
    let dims = parse_dims st in
    b.decls <- { d_name = name; d_type = dtype; d_dims = dims } :: b.decls
  in
  parse_one ();
  while accept st Token.Comma do parse_one () done;
  end_of_stmt st

(* DATA name /v1, v2, n*v/ [, name /.../]*.  Values are restricted to
   signed constants (with optional n*value repeat counts): a full
   expression parser would swallow the '/' and '*' delimiters. *)
let parse_data st b =
  let parse_constant () =
    let is_neg = accept st Token.Minus in
    let () = if not is_neg then ignore (accept st Token.Plus) in
    let v =
      match next st with
      | Token.Int i -> Const_int i
      | Token.Real f -> Const_real f
      | Token.True -> Const_bool true
      | Token.False -> Const_bool false
      | t -> error st "DATA value must be a constant, found %s"
               (Token.to_string t)
    in
    if is_neg then neg v else v
  in
  let parse_group () =
    let name = ident st in
    expect st Token.Slash;
    let values = ref [] in
    let parse_value () =
      let v = parse_constant () in
      match v with
      | Const_int n when accept st Token.Star ->
          let rep = parse_constant () in
          for _ = 1 to n do values := rep :: !values done
      | v -> values := v :: !values
    in
    parse_value ();
    while accept st Token.Comma do parse_value () done;
    expect st Token.Slash;
    b.data <- (name, List.rev !values) :: b.data
  in
  parse_group ();
  while accept st Token.Comma do parse_group () done;
  end_of_stmt st

(* Returns [true] when the current line was a declaration. *)
let rec parse_decl_line st b =
  skip_newlines st;
  match peek_ident st with
  | Some "implicit" ->
      (* implicit none — accepted and ignored *)
      advance st;
      expect_ident st "none";
      end_of_stmt st;
      true
  | Some "integer" ->
      advance st;
      parse_decl_entities st b Integer;
      true
  | Some "logical" ->
      advance st;
      parse_decl_entities st b Logical;
      true
  | Some "real" ->
      advance st;
      let dtype =
        if accept st Token.Star then begin
          match next st with
          | Token.Int 8 -> Double
          | Token.Int 4 -> Real
          | t -> error st "unsupported real kind *%s" (Token.to_string t)
        end
        else Real
      in
      parse_decl_entities st b dtype;
      true
  | Some "double" ->
      advance st;
      expect_ident st "precision";
      parse_decl_entities st b Double;
      true
  | Some "dimension" ->
      advance st;
      (* dimension a(n), b(m): bare dimension defaults to REAL *)
      parse_decl_entities st b Real;
      true
  | Some "parameter" ->
      advance st;
      expect st Token.Lparen;
      let parse_one () =
        let name = ident st in
        expect st Token.Assign;
        let value = parse_expr st in
        b.consts <- (name, value) :: b.consts
      in
      parse_one ();
      while accept st Token.Comma do parse_one () done;
      expect st Token.Rparen;
      end_of_stmt st;
      true
  | Some "common" ->
      advance st;
      let block_name =
        if accept st Token.Slash then begin
          let n = ident st in
          expect st Token.Slash;
          n
        end
        else ""
      in
      let vars = ref [ ident st ] in
      (* allow declared dimensions inside COMMON: common /f/ u(n,m) *)
      let absorb_dims () =
        match parse_dims st with
        | [] -> ()
        | dims ->
            let name = List.hd !vars in
            b.decls <-
              { d_name = name; d_type = Real; d_dims = dims } :: b.decls
      in
      absorb_dims ();
      while accept st Token.Comma do
        vars := ident st :: !vars;
        absorb_dims ()
      done;
      end_of_stmt st;
      b.commons <- (block_name, List.rev !vars) :: b.commons;
      true
  | Some "data" ->
      advance st;
      parse_data st b;
      true
  | _ -> false

and parse_decl_section st b =
  if parse_decl_line st b then parse_decl_section st b

let parse_unit_body st =
  let stmts = ref [] in
  let continue = ref true in
  while !continue do
    skip_newlines st;
    match peek_ident st with
    | Some "end" ->
        advance st;
        end_of_stmt st;
        continue := false
    | _ ->
        let stmt = parse_stmt st in
        stmts := stmt :: !stmts;
        if st.terminated <> None then
          error st "unterminated labelled DO loop"
  done;
  List.rev !stmts

let parse_unit st =
  skip_newlines st;
  let kind, name =
    match peek_ident st with
    | Some "program" ->
        advance st;
        let name = ident st in
        end_of_stmt st;
        (Main, name)
    | Some "subroutine" ->
        advance st;
        let name = ident st in
        let params =
          if accept st Token.Lparen then begin
            let ps =
              if Token.equal (peek st) Token.Rparen then []
              else begin
                let ps = ref [ ident st ] in
                while accept st Token.Comma do ps := ident st :: !ps done;
                List.rev !ps
              end
            in
            expect st Token.Rparen;
            ps
          end
          else []
        in
        end_of_stmt st;
        (Subroutine params, name)
    | _ ->
        error st "expected PROGRAM or SUBROUTINE, found %s"
          (Token.to_string (peek st))
  in
  let b = { decls = []; consts = []; commons = []; data = [] } in
  parse_decl_section st b;
  let body = parse_unit_body st in
  {
    u_name = name;
    u_kind = kind;
    u_decls = List.rev b.decls;
    u_consts = List.rev b.consts;
    u_commons = List.rev b.commons;
    u_data = List.rev b.data;
    u_body = body;
  }

let parse source =
  let toks, directives = Lexer.tokenize source in
  let st = make_state toks in
  let units = ref [] in
  skip_newlines st;
  while not (Token.equal (peek st) Token.Eof) do
    units := parse_unit st :: !units;
    skip_newlines st
  done;
  { p_units = List.rev !units; p_directives = directives }

let parse_expr_string s =
  (* tokenize directly: [tokenize] would mistake a leading integer for a
     statement label *)
  let toks =
    Lexer.tokens_of_line 1 s @ [ { Lexer.tok = Token.Eof; tline = 1 } ]
  in
  let st = make_state toks in
  parse_expr st
