open Ast

(* maximum statement label used anywhere in a program *)
let max_label p =
  let acc = ref 0 in
  List.iter
    (fun u ->
      iter_stmts
        (fun st ->
          (match st.s_label with Some l -> acc := max !acc l | None -> ());
          match st.s_kind with
          | Goto l -> acc := max !acc l
          | _ -> ())
        u.u_body)
    p.p_units;
  !acc

type state = {
  program : Ast.program;
  mutable next_label : int;
  (* canonical member names per COMMON block *)
  commons : (string, string list) Hashtbl.t;
  mutable out_decls : decl list;  (* reversed *)
  mutable out_consts : (string * expr) list;  (* reversed *)
  mutable out_data : (string * expr list) list;  (* reversed *)
  mutable seen_decls : (string, unit) Hashtbl.t;
}

let fresh_label st =
  let l = st.next_label in
  st.next_label <- l + 1;
  l

let find_subroutine st name =
  match Ast.find_unit st.program name with
  | Some u -> u
  | None -> failwith (Printf.sprintf "inline: subroutine '%s' not found" name)

(* Renaming environment for one unit expansion. *)
type env = {
  (* variable -> replacement expression *)
  rename : (string, expr) Hashtbl.t;
  label_map : (int, int) Hashtbl.t;
  assigned_dummies_ok : (string, unit) Hashtbl.t;
      (* dummies bound to variables, hence assignable *)
  mutable return_label : int option;
}

let lookup_var env x = Hashtbl.find_opt env.rename x

let rec rewrite_expr env (e : expr) =
  match e with
  | Var x -> ( match lookup_var env x with Some r -> r | None -> e)
  | Ref (x, args) -> (
      let args = List.map (rewrite_expr env) args in
      if is_intrinsic x then Ref (x, args)
      else
        match lookup_var env x with
        | Some (Var y) -> Ref (y, args)
        | Some _ ->
            failwith
              (Printf.sprintf
                 "inline: array dummy '%s' bound to a non-variable" x)
        | None -> Ref (x, args))
  | Unop (op, a) -> Unop (op, rewrite_expr env a)
  | Binop (op, a, b) -> Binop (op, rewrite_expr env a, rewrite_expr env b)
  | Local_lo (d, a) -> Local_lo (d, rewrite_expr env a)
  | Local_hi (d, a) -> Local_hi (d, rewrite_expr env a)
  | Const_int _ | Const_real _ | Const_bool _ | Const_str _ -> e

let map_label env l =
  match Hashtbl.find_opt env.label_map l with
  | Some l' -> l'
  | None -> l

let rewrite_lhs env (e : expr) =
  match e with
  | Var x -> (
      match lookup_var env x with
      | Some (Var y) -> Var y
      | Some _ when Hashtbl.mem env.assigned_dummies_ok x -> assert false
      | Some _ ->
          failwith
            (Printf.sprintf
               "inline: dummy '%s' is assigned but bound to an expression" x)
      | None -> e)
  | Ref _ -> rewrite_expr env e
  | _ -> failwith "inline: bad assignment target"

let rec expand_block st path env block =
  List.concat_map (expand_stmt st path env) block

and expand_stmt st path env stmt =
  let line = stmt.s_line in
  let label = Option.map (map_label env) stmt.s_label in
  let re = rewrite_expr env in
  let mk kind = [ mk_stmt ?label ~line kind ] in
  match stmt.s_kind with
  | Assign (lhs, rhs) -> mk (Assign (rewrite_lhs env lhs, re rhs))
  | If (branches, els) ->
      mk
        (If
           ( List.map
               (fun (c, b) -> (re c, expand_block st path env b))
               branches,
             Option.map (expand_block st path env) els ))
  | Do d ->
      let var =
        match lookup_var env d.do_var with
        | Some (Var y) -> y
        | Some _ -> failwith "inline: DO variable bound to an expression"
        | None -> d.do_var
      in
      mk
        (Do
           {
             do_var = var;
             do_lo = re d.do_lo;
             do_hi = re d.do_hi;
             do_step = Option.map re d.do_step;
             do_body = expand_block st path env d.do_body;
             do_sched = d.do_sched;
             do_fission = d.do_fission;
           })
  | Goto l -> mk (Goto (map_label env l))
  | Continue -> mk Continue
  | Call (name, args) ->
      let args = List.map re args in
      let callee = find_subroutine st name in
      if List.mem (String.lowercase_ascii name) path then
        failwith (Printf.sprintf "inline: recursion through '%s'" name);
      let body =
        expand_call st (String.lowercase_ascii name :: path) callee args
      in
      (* keep the call site's label on a leading CONTINUE *)
      (match label with
      | Some _ -> mk_stmt ?label ~line Continue :: body
      | None -> body)
  | Return -> (
      match env.return_label with
      | Some l -> mk (Goto l)
      | None ->
          let l = fresh_label st in
          env.return_label <- Some l;
          mk (Goto l))
  | Stop -> mk Stop
  | Read items -> mk (Read (List.map re items))
  | Write items -> mk (Write (List.map re items))
  | Comm c -> mk (Comm c)
  | Pipeline_recv r -> mk (Pipeline_recv r)
  | Pipeline_send s_ -> mk (Pipeline_send s_)

and expand_call st path callee args =
  let params =
    match callee.u_kind with
    | Subroutine ps -> ps
    | Main -> failwith "inline: cannot call the main program"
  in
  if List.length params <> List.length args then
    failwith
      (Printf.sprintf "inline: call to '%s' passes %d args for %d parameters"
         callee.u_name (List.length args) (List.length params));
  let env =
    {
      rename = Hashtbl.create 16;
      label_map = Hashtbl.create 16;
      assigned_dummies_ok = Hashtbl.create 8;
      return_label = None;
    }
  in
  (* dummy parameters *)
  List.iter2
    (fun p a ->
      Hashtbl.replace env.rename p a;
      match a with
      | Var _ -> Hashtbl.replace env.assigned_dummies_ok p ()
      | _ -> ())
    params args;
  (* COMMON members: positional match against the canonical declaration *)
  List.iter
    (fun (blk, members) ->
      match Hashtbl.find_opt st.commons blk with
      | None ->
          Hashtbl.replace st.commons blk members;
          (* first declaration becomes canonical: no renaming *)
          ()
      | Some canonical ->
          if List.length canonical <> List.length members then
            failwith
              (Printf.sprintf
                 "inline: COMMON /%s/ has inconsistent member counts" blk);
          List.iter2
            (fun canon m ->
              if m <> canon then Hashtbl.replace env.rename m (Var canon))
            canonical members)
    callee.u_commons;
  (* remaining locals: prefix with the unit name *)
  let prefix = String.lowercase_ascii callee.u_name ^ "_" in
  let is_common_member x =
    List.exists (fun (_, ms) -> List.mem x ms) callee.u_commons
  in
  let rename_local x =
    if Hashtbl.mem env.rename x then ()
    else if is_common_member x then ()
    else Hashtbl.replace env.rename x (Var (prefix ^ x))
  in
  (* locals are: declared names, parameter constants, DO variables and
     assigned scalars found in the body *)
  List.iter (fun d -> rename_local d.d_name) callee.u_decls;
  List.iter (fun (n, _) -> rename_local n) callee.u_consts;
  iter_stmts
    (fun s ->
      match s.s_kind with
      | Do d -> rename_local d.do_var
      | Assign (Var x, _) -> rename_local x
      | _ -> ())
    callee.u_body;
  (* relabel *)
  iter_stmts
    (fun s ->
      match s.s_label with
      | Some l ->
          if not (Hashtbl.mem env.label_map l) then
            Hashtbl.replace env.label_map l (fresh_label st)
      | None -> ())
    callee.u_body;
  (* constants (renamed) *)
  List.iter
    (fun (n, e) ->
      let n' =
        match lookup_var env n with
        | Some (Var y) -> y
        | _ -> n
      in
      if not (Hashtbl.mem st.seen_decls ("const:" ^ n')) then begin
        Hashtbl.replace st.seen_decls ("const:" ^ n') ();
        st.out_consts <- (n', rewrite_expr env e) :: st.out_consts
      end)
    callee.u_consts;
  (* declarations (renamed; dummies bound to caller variables are dropped) *)
  List.iter
    (fun d ->
      let keep, name =
        if List.mem d.d_name params then (false, d.d_name)
        else
          match lookup_var env d.d_name with
          | Some (Var y) -> (true, y)
          | Some _ -> (false, d.d_name)
          | None -> (true, d.d_name)
      in
      if keep && not (Hashtbl.mem st.seen_decls name) then begin
        Hashtbl.replace st.seen_decls name ();
        st.out_decls <-
          { d with d_name = name;
                   d_dims = List.map (fun (a, b) ->
                       (rewrite_expr env a, rewrite_expr env b)) d.d_dims }
          :: st.out_decls
      end)
    callee.u_decls;
  (* data initializations *)
  List.iter
    (fun (n, vs) ->
      let n' = match lookup_var env n with Some (Var y) -> y | _ -> n in
      if not (Hashtbl.mem st.seen_decls ("data:" ^ n')) then begin
        Hashtbl.replace st.seen_decls ("data:" ^ n') ();
        st.out_data <- (n', vs) :: st.out_data
      end)
    callee.u_data;
  let body = expand_block st path env callee.u_body in
  (* a RETURN somewhere in the body jumps to a trailing CONTINUE *)
  match env.return_label with
  | None -> body
  | Some l -> body @ [ mk_stmt ~label:l ~line:0 Continue ]

let program (p : Ast.program) =
  let main = Ast.main_unit p in
  let st =
    {
      program = p;
      next_label = max_label p + 1;
      commons = Hashtbl.create 8;
      out_decls = [];
      out_consts = [];
      out_data = [];
      seen_decls = Hashtbl.create 64;
    }
  in
  (* the main unit's own names are canonical *)
  List.iter
    (fun (blk, members) ->
      if not (Hashtbl.mem st.commons blk) then
        Hashtbl.replace st.commons blk members)
    main.u_commons;
  List.iter
    (fun d -> Hashtbl.replace st.seen_decls d.d_name ())
    main.u_decls;
  List.iter
    (fun (n, _) -> Hashtbl.replace st.seen_decls ("const:" ^ n) ())
    main.u_consts;
  let env =
    {
      rename = Hashtbl.create 1;
      label_map = Hashtbl.create 1;
      assigned_dummies_ok = Hashtbl.create 1;
      return_label = None;
    }
  in
  let body = expand_block st [ String.lowercase_ascii main.u_name ] env main.u_body in
  let commons =
    Hashtbl.fold (fun blk ms acc -> (blk, ms) :: acc) st.commons []
    |> List.sort compare
  in
  {
    u_name = main.u_name;
    u_kind = Main;
    u_decls = main.u_decls @ List.rev st.out_decls;
    u_consts = main.u_consts @ List.rev st.out_consts;
    u_commons = commons;
    u_data = main.u_data @ List.rev st.out_data;
    u_body = body;
  }
