(** Combining synchronizations (paper §5.1.2 Fig. 6 and §5.3 Fig. 8).

    Run with: dune exec examples/sync_combine.exe

    Part 1 builds a program whose six A/R loop pairs produce six
    overlapping upper-bound synchronization regions, and contrasts the
    paper's optimal combining with the first-fit strategy of Fig. 6(c).

    Part 2 reproduces the Fig. 8 pattern: a main program calling
    subroutine a twice and subroutine b once — the per-call synchronization
    regions hoist out of the subroutines and combine into a single
    synchronization point. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module S = Autocfd_syncopt

(* six writer loops followed by six reader loops, interleaved so the
   regions overlap the way Fig. 6 sketches *)
let fig6 =
  {|
c$acfd grid(n)
c$acfd status(a1, a2, a3, a4, a5, a6)
      program fig6
      parameter (n = 40)
      real a1(n), a2(n), a3(n), a4(n), a5(n), a6(n)
      integer i, it
      do i = 1, n
        a1(i) = 1.0
        a2(i) = 2.0
        a3(i) = 3.0
        a4(i) = 4.0
        a5(i) = 5.0
        a6(i) = 6.0
      end do
      do it = 1, 3
        do i = 2, n - 1
          a1(i) = a1(i) + 0.1
        end do
        do i = 2, n - 1
          a2(i) = a2(i) + 0.1
        end do
        do i = 2, n - 1
          a3(i) = a3(i) + 0.1
        end do
        do i = 2, n - 1
          a1(i) = a1(i) + a1(i-1) * 0.01
        end do
        do i = 2, n - 1
          a4(i) = a4(i) + a2(i+1)
        end do
        do i = 2, n - 1
          a5(i) = a5(i) + a3(i-1)
        end do
        do i = 2, n - 1
          a4(i) = a4(i) + 0.1
        end do
        do i = 2, n - 1
          a5(i) = a5(i) + 0.1
        end do
        do i = 2, n - 1
          a6(i) = a6(i) + a4(i-1) + a5(i+1)
        end do
        do i = 2, n - 1
          a6(i) = a6(i) + a6(i-1) * 0.01
        end do
      end do
      write(*,*) a6(n/2)
      end
|}

let fig8 =
  {|
c$acfd grid(n)
c$acfd status(u, v)
      program fig8
      parameter (n = 30)
      real u(n), v(n)
      common /f/ u, v
      integer i, it
      do i = 1, n
        u(i) = float(i)
        v(i) = 0.0
      end do
      do it = 1, 4
        call a
        call b
        call a
        do i = 2, n - 1
          v(i) = u(i-1) + u(i+1)
        end do
      end do
      write(*,*) v(n/2)
      end

      subroutine a
      parameter (n = 30)
      real u(n), v(n)
      common /f/ u, v
      integer i
      do i = 2, n - 1
        u(i) = u(i) * 1.01
      end do
      return
      end

      subroutine b
      parameter (n = 30)
      real u(n), v(n)
      common /f/ u, v
      integer i
      do i = 2, n - 1
        u(i) = u(i) + 0.5
      end do
      return
      end
|}

let report name src =
  Printf.printf "--- %s ---\n" name;
  let t = D.load src in
  let optimal = D.plan ~spec:(parts_spec [| 4 |]) t in
  let first_fit =
    D.plan
      ~spec:
        (Autocfd.Runspec.with_combine S.Optimizer.First_fit
           (parts_spec [| 4 |]))
      t
  in
  Printf.printf
    "synchronizations: %d before; combined: %d (optimal) vs %d (first-fit)\n"
    optimal.D.opt.S.Optimizer.before optimal.D.opt.S.Optimizer.after
    first_fit.D.opt.S.Optimizer.after;
  List.iteri
    (fun i (g : S.Combine.group) ->
      Printf.printf "  point #%d merges %d regions (arrays: %s)\n" (i + 1)
        (List.length g.S.Combine.gr_regions)
        (String.concat ","
           (List.sort_uniq compare
              (List.map
                 (fun (tr : Autocfd_fortran.Ast.transfer) ->
                   tr.Autocfd_fortran.Ast.xfer_array)
                 g.S.Combine.gr_transfers))))
    optimal.D.opt.S.Optimizer.groups;
  (* validate on the simulator *)
  let seq = D.run_seq t in
  let par = D.run optimal in
  let worst =
    List.fold_left (fun a (_, d) -> Float.max a d) 0.0
      (D.max_divergence seq par)
  in
  Printf.printf "execution check: %s vs %s -> %s\n\n"
    (String.concat "" seq.D.sq_output)
    (String.concat "" par.Autocfd_interp.Spmd.output)
    (if worst = 0.0 then "OK" else "MISMATCH")

let () =
  print_endline "=== Combining synchronization points (Figs. 6 and 8) ===\n";
  report "Fig. 6: overlapping upper-bound regions" fig6;
  report "Fig. 8: combining across subroutine calls" fig8
