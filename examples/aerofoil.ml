(** Case study 1: the aerofoil simulation (paper §6, Tables 1 and 2).

    Run with: dune exec examples/aerofoil.exe

    Analyzes the bundled 3-D aerofoil program at full grid size
    (99 x 41 x 13), showing the mirror-image pipelined pressure solve and
    the paper's partition-dependent synchronization census; then executes
    a reduced-size instance on 6 simulated ranks (3 x 2 x 1, the paper's
    best 6-processor partition) and validates it against the sequential
    run. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module A = Autocfd_analysis
module S = Autocfd_syncopt
module M = Autocfd_perfmodel.Model

let shape parts =
  String.concat " x " (Array.to_list (Array.map string_of_int parts))

let () =
  print_endline "=== Case study 1: aerofoil simulation ===";
  (* full-size static analysis *)
  let full = D.load (Autocfd_apps.Aerofoil.source ()) in
  print_endline "synchronization census (full 99 x 41 x 13 grid):";
  List.iter
    (fun parts ->
      let plan = D.plan ~spec:(parts_spec parts) full in
      Printf.printf "  %-9s  %3d before -> %2d after\n" (shape parts)
        plan.D.opt.S.Optimizer.before plan.D.opt.S.Optimizer.after)
    [ [| 4; 1; 1 |]; [| 1; 4; 1 |]; [| 1; 1; 4 |]; [| 4; 4; 1 |] ];
  (* strategies on the interesting loops *)
  let plan = D.plan ~spec:(parts_spec [| 3; 2; 1 |]) full in
  print_endline "\nparallelization strategies (3 x 2 x 1):";
  List.iter2
    (fun (s : A.Field_loop.summary) (_, strat) ->
      match strat with
      | A.Mirror.Pipeline dims ->
          Printf.printf
            "  line %-4d (do %s): mirror-image pipeline over dims {%s}\n"
            s.A.Field_loop.fs_loop.A.Loops.lp_line
            s.A.Field_loop.fs_loop.A.Loops.lp_var
            (String.concat "," (List.map (fun (d, _) -> string_of_int d) dims))
      | A.Mirror.Serial ->
          Printf.printf "  line %-4d (do %s): serial (replicated)\n"
            s.A.Field_loop.fs_loop.A.Loops.lp_line
            s.A.Field_loop.fs_loop.A.Loops.lp_var
      | A.Mirror.Block -> ())
    plan.D.summaries plan.D.strategies;
  (* modelled wall-clock on the simulated Pentium/Ethernet cluster *)
  let pred =
    M.predict_parallel M.pentium_cluster ~gi:full.D.gi ~topo:plan.D.topo
      plan.D.spmd
  in
  Printf.printf
    "\nmodelled time on the 2003-class cluster (3 x 2 x 1, %d frames): %.1f s\n"
    20 pred.M.time;
  Printf.printf "  (Table 2 in bench/main.exe runs the same program for %d frames)\n"
    Autocfd.Experiments.aerofoil_frames;
  (* reduced-size execution for validation *)
  print_endline "\nvalidating on a reduced 20 x 12 x 6 grid, 6 ranks:";
  let small =
    D.load (Autocfd_apps.Aerofoil.source ~ni:20 ~nj:12 ~nk:6 ~ntime:5 ())
  in
  let splan = D.plan ~spec:(parts_spec [| 3; 2; 1 |]) small in
  let seq = D.run_seq small in
  let par = D.run splan in
  Printf.printf "  sequential: %s\n" (String.concat "|" seq.D.sq_output);
  Printf.printf "  parallel:   %s\n"
    (String.concat "|" par.Autocfd_interp.Spmd.output);
  let worst =
    List.fold_left
      (fun acc (_, d) -> Float.max acc d)
      0.0
      (D.max_divergence seq par)
  in
  Printf.printf "  max divergence over all status arrays: %g -> %s\n" worst
    (if worst = 0.0 then "OK" else "MISMATCH")
