(** Lid-driven cavity flow — a third demonstration program.

    Run with: dune exec examples/cavity.exe

    The canonical CFD validation problem: a square cavity whose lid moves
    at constant speed.  The stream-function SOR solve is self-dependent in
    both directions (mirror-image pipelining), and the outer convergence
    iteration is a backward-GOTO while loop — the classic F77 pattern —
    which the analysis recognizes as a carrying loop.  The example prints
    the vortex strength for a few Reynolds-style lid speeds and validates
    each parallel run against its sequential one. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module I = Autocfd_interp

let vortex_strength (arrays : (string * I.Value.arr) list) =
  match List.assoc_opt "psi" arrays with
  | None -> nan
  | Some psi ->
      Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0
        psi.I.Value.data

let () =
  print_endline "=== Lid-driven cavity (mirror-image SOR + goto while loop) ===";
  let t0 = D.load (Autocfd_apps.Cavity.source ~n:21 ~maxit:15 ~npsi:4 ()) in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t0 in
  Printf.printf "synchronizations: %d before -> %d after\n"
    plan.D.opt.Autocfd_syncopt.Optimizer.before
    plan.D.opt.Autocfd_syncopt.Optimizer.after;
  Printf.printf "while-style carrying loops recognized: %d\n\n"
    (List.length plan.D.sldp.Autocfd_analysis.Sldp.virtual_spans);
  Printf.printf "%-10s %-18s %-12s %s\n" "lid speed" "vortex strength"
    "divergence" "status";
  List.iter
    (fun ulid ->
      let t =
        D.load (Autocfd_apps.Cavity.source ~n:21 ~maxit:15 ~npsi:4 ~ulid ())
      in
      let p = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
      let seq = D.run_seq t in
      let par = D.run p in
      let worst =
        List.fold_left (fun a (_, d) -> Float.max a d) 0.0
          (D.max_divergence seq par)
      in
      Printf.printf "%-10.2f %-18.6f %-12.3g %s\n" ulid
        (vortex_strength seq.D.sq_arrays)
        worst
        (if worst = 0.0 then "OK" else "MISMATCH"))
    [ 0.5; 1.0; 2.0 ]
