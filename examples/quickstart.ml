(** Quickstart: parallelize a small heat-diffusion kernel.

    Run with: dune exec examples/quickstart.exe

    This walks the full Auto-CFD pipeline on a 24 x 16 Jacobi solver:
    parse -> partition 2 x 2 -> dependency analysis -> synchronization
    optimization -> SPMD code generation -> simulated 4-rank execution,
    and checks the parallel result is bit-identical to the sequential
    one. *)

let source =
  {|
c$acfd grid(ni, nj)
c$acfd status(u, unew)
      program heat
      parameter (ni = 24, nj = 16)
      real u(ni, nj), unew(ni, nj)
      real errmax, eps
      integer i, j, iter, nmax
      eps = 1.0e-5
      nmax = 400
c  initial and boundary conditions
      do i = 1, ni
        do j = 1, nj
          u(i, j) = 0.0
        end do
      end do
      do j = 1, nj
        u(1, j) = 1.0
        u(ni, j) = float(j) / float(nj)
      end do
c  Jacobi iteration until the field is stable
      do iter = 1, nmax
        do i = 2, ni - 1
          do j = 2, nj - 1
            unew(i,j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        errmax = 0.0
        do i = 2, ni - 1
          do j = 2, nj - 1
            errmax = max(errmax, abs(unew(i,j) - u(i,j)))
            u(i, j) = unew(i, j)
          end do
        end do
        if (errmax .lt. eps) goto 100
      end do
 100  continue
      write(*,*) iter, errmax
      end
|}

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))

let () =
  let module D = Autocfd.Driver in
  print_endline "=== Auto-CFD quickstart: 24 x 16 heat diffusion ===";
  let t = D.load source in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  Printf.printf
    "synchronization points: %d before optimization -> %d after\n"
    plan.D.opt.Autocfd_syncopt.Optimizer.before
    plan.D.opt.Autocfd_syncopt.Optimizer.after;
  print_endline "\n--- generated SPMD program (excerpt) ---";
  let text = D.spmd_source plan in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline;
  print_endline "    ... (truncated)";
  print_endline "\n--- execution ---";
  let seq = D.run_seq t in
  Printf.printf "sequential:  %s\n" (String.concat " | " seq.D.sq_output);
  let par = D.run plan in
  Printf.printf "4 ranks:     %s\n"
    (String.concat " | " par.Autocfd_interp.Spmd.output);
  Printf.printf "messages exchanged: %d (%d bytes)\n"
    par.Autocfd_interp.Spmd.stats.Autocfd_mpsim.Sim.messages
    par.Autocfd_interp.Spmd.stats.Autocfd_mpsim.Sim.bytes;
  List.iter
    (fun (name, d) ->
      Printf.printf "max |seq - par| for %-5s = %g\n" name d)
    (D.max_divergence seq par);
  let ok =
    List.for_all (fun (_, d) -> d = 0.0) (D.max_divergence seq par)
  in
  print_endline (if ok then "OK: bit-identical results" else "MISMATCH")
