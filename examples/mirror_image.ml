(** Mirror-image decomposition (paper §4.2, Figs. 3 and 4).

    Run with: dune exec examples/mirror_image.exe

    Shows the two self-dependent loops of the paper's Fig. 3:

    - Fig. 3(a): a one-directional recurrence — only dependences in the
      lexicographic order; classic wavefront pipelining applies;
    - Fig. 3(b): a Gauss-Seidel sweep with dependences both along and
      against the lexicographic order — "not parallelizable by traditional
      methods"; the mirror-image decomposition splits the dependence graph
      by access direction: the flow subgraph is pipelined, the mirror
      (anti) subgraph is satisfied by the pre-sweep halo exchange.

    Both loops are then executed on 4 simulated ranks and compared with
    the sequential result. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module A = Autocfd_analysis

let fig3a =
  {|
c$acfd grid(m, n)
c$acfd status(v)
      program fig3a
      parameter (m = 18, n = 14)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i) + 0.5 * float(j)
        end do
      end do
      do it = 1, 10
        do i = 2, m
          do j = 2, n
            v(i, j) = 0.5 * (v(i-1, j) + v(i, j-1))
          end do
        end do
      end do
      write(*,*) v(m, n)
      end
|}

let fig3b =
  {|
c$acfd grid(m, n)
c$acfd status(v)
      program fig3b
      parameter (m = 18, n = 14)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i) + 0.5 * float(j)
        end do
      end do
      do it = 1, 10
        do i = 2, m - 1
          do j = 2, n - 1
            v(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
          end do
        end do
      end do
      write(*,*) v(m/2, n/2)
      end
|}

let show name source =
  Printf.printf "--- %s ---\n" name;
  let t = D.load source in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let env = A.Env.of_unit t.D.inlined in
  List.iter
    (fun (s : A.Field_loop.summary) ->
      match A.Mirror.decompose ~ndims:2 env s "v" with
      | None -> ()
      | Some de ->
          Printf.printf "self-dependent loop at line %d:\n"
            s.A.Field_loop.fs_loop.A.Loops.lp_line;
          List.iter
            (fun (vec, cls) ->
              Printf.printf "  offset vector (%s): %s subgraph\n"
                (String.concat ","
                   (Array.to_list (Array.map string_of_int vec)))
                (match cls with
                | A.Mirror.Flow -> "flow  (pipelined)"
                | A.Mirror.Anti -> "anti  (mirror image: pre-exchanged halo)"))
            de.A.Mirror.de_vectors)
    plan.D.summaries;
  List.iter
    (fun (_, strat) ->
      match strat with
      | A.Mirror.Pipeline dims ->
          Printf.printf "strategy: pipeline over dims {%s}\n"
            (String.concat ","
               (List.map (fun (d, _) -> string_of_int d) dims))
      | _ -> ())
    plan.D.strategies;
  let seq = D.run_seq t in
  let par = D.run plan in
  let worst =
    List.fold_left (fun a (_, d) -> Float.max a d) 0.0
      (D.max_divergence seq par)
  in
  Printf.printf "sequential: %s | 4 ranks: %s | max divergence %g -> %s\n\n"
    (String.concat "" seq.D.sq_output)
    (String.concat "" par.Autocfd_interp.Spmd.output)
    worst
    (if worst = 0.0 then "OK" else "MISMATCH")

let show_skew () =
  (* the paper's alternative for Fig. 3(a)-style loops: loop skewing *)
  print_endline "--- loop skewing (the Fig. 3(a) alternative) ---";
  let p = Autocfd_fortran.Parser.parse fig3b in
  let gi = A.Grid_info.of_program p in
  let u = Autocfd_fortran.Inline.program p in
  let u', n = Autocfd_codegen.Skew.transform_unit gi u in
  Printf.printf "nests skewed: %d\n" n;
  let run unit_ =
    let m = Autocfd_interp.Machine.create unit_ in
    Autocfd_interp.Machine.run m;
    Autocfd_interp.Machine.output m
  in
  Printf.printf "original: %s | skewed: %s -> %s\n"
    (String.concat "" (run u))
    (String.concat "" (run u'))
    (if run u = run u' then "OK (identical)" else "MISMATCH");
  print_endline "skewed inner loop sweeps the anti-diagonal wavefront:";
  let text = Autocfd_fortran.Pretty.unit_ u' in
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let has needle =
           let nh = String.length l and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub l i nn = needle || go (i + 1)) in
           nn > 0 && go 0
         in
         has "acfdsk")
  |> List.iteri (fun i l -> if i < 4 then print_endline l)

let () =
  print_endline "=== Mirror-image decomposition (paper Figs. 3-4) ===\n";
  show "Fig. 3(a): one-directional recurrence (wavefront)" fig3a;
  show "Fig. 3(b): Gauss-Seidel (mirror-image decomposition)" fig3b;
  show_skew ()
