(** Case study 2: the sprayer flow simulation (paper §6, Tables 1, 3-5).

    Run with: dune exec examples/sprayer.exe

    The paper's sprayer study examines "the air velocity for variations of
    sprayers, such as the sprayer fan speeds and fan positions": this
    example runs the parallelized simulation for three fan speeds and two
    fan positions on 4 simulated ranks, reporting the resulting outlet
    velocity profile — each configuration validated against its sequential
    run. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module I = Autocfd_interp

let mean_outlet_speed (par : I.Spmd.result) =
  match List.assoc_opt "u" par.I.Spmd.gathered with
  | None -> nan
  | Some u ->
      let (_, ni), (jlo, jhi) = (u.I.Value.bounds.(0), u.I.Value.bounds.(1)) in
      let acc = ref 0.0 in
      for j = jlo to jhi do
        acc := !acc +. I.Value.get u [| ni; j |]
      done;
      !acc /. float_of_int (jhi - jlo + 1)

let () =
  print_endline "=== Case study 2: sprayer flow, fan parameter study ===";
  Printf.printf "%-10s %-12s %-16s %-12s %s\n" "fan speed" "fan row"
    "mean outlet u" "divergence" "status";
  List.iter
    (fun (ufan, jfan) ->
      let src =
        Autocfd_apps.Sprayer.source ~ni:60 ~nj:24 ~ntime:12 ~npsi:4 ~ufan
          ~jfan ()
      in
      let t = D.load src in
      let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
      let seq = D.run_seq t in
      let par = D.run plan in
      let worst =
        List.fold_left
          (fun acc (_, d) -> Float.max acc d)
          0.0
          (D.max_divergence seq par)
      in
      Printf.printf "%-10.2f %-12d %-16.5f %-12.3g %s\n" ufan jfan
        (mean_outlet_speed par) worst
        (if worst = 0.0 then "OK" else "MISMATCH"))
    [ (0.5, 12); (1.0, 12); (2.0, 12); (1.0, 6); (1.0, 18) ];
  print_endline
    "\n(the fan accelerates the outlet flow; moving the fan row shifts\n\
    \ the profile — every configuration matches its sequential run)"
