c  2-D Jacobi heat relaxation with a global convergence reduction.
c  The smallest complete input for the Auto-CFD pre-compiler: one
c  block-parallel sweep pair plus a max-reduction, enough to exercise
c  halo exchange, allreduce and the tracer.  Try:
c
c    autocfd analyze examples/heat2d.f --parts 2x2
c    autocfd run     examples/heat2d.f --parts 2x2
c    autocfd trace   examples/heat2d.f --parts 2x2 --out trace.json
c
c$acfd grid(m, n)
c$acfd status(u, w)
      program heat2d
      parameter (m = 60, n = 30, ntime = 40)
      real u(m, n), w(m, n)
      real errmax, eps
      integer i, j, it
      eps = 1.0e-4
      do 10 i = 1, m
        do 10 j = 1, n
          u(i, j) = 0.001 * float(i) * float(i) + 0.02 * float(j)
          w(i, j) = 0.0
 10   continue
      do 500 it = 1, ntime
        do 100 i = 2, m - 1
          do 100 j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
 100    continue
        errmax = 0.0
        do 200 i = 2, m - 1
          do 200 j = 2, n - 1
            errmax = max(errmax, abs(w(i, j) - u(i, j)))
            u(i, j) = w(i, j)
 200    continue
        if (errmax .lt. eps) goto 900
 500  continue
 900  continue
      write(*,*) it, errmax
      end
